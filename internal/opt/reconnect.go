// Package opt implements the paper's §IV slack optimization techniques,
// which realize the target latencies computed by clock skew scheduling:
//
//   - LCB–FF reconnection (§IV-A): move a flip-flop's clock pin to an LCB
//     whose distance produces the scheduled latency (Eq 15–16), respecting
//     the LCB fanout limit and the one-reconnection-per-LCB rule;
//   - cell movement (§IV-B): nudge movable cells on early-violating paths
//     north/south/east/west with a growing step to lengthen the short path.
package opt

import (
	"math"
	"sort"
	"time"

	"iterskew/internal/netlist"
	"iterskew/internal/timing"
)

const eps = 1e-6

// ReconnectOptions tunes §IV-A.
type ReconnectOptions struct {
	// MaxCandidates is the candidate-set size drawn from the distance
	// matrix (default 8).
	MaxCandidates int
	// MaxPerLCB caps how many reconnections an LCB may receive; the paper
	// prohibits reconnecting to an LCB "that has already undergone
	// reconnection", i.e. 1 (the default).
	MaxPerLCB int
	// ImpactWeight scales the cost of latency shifts induced on the other
	// flip-flops of the affected LCBs (default 1).
	ImpactWeight float64
	// MinTarget skips targets smaller than this (not worth a reconnection;
	// default 1 ps).
	MinTarget float64
}

func (o *ReconnectOptions) defaults() {
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 8
	}
	if o.MaxPerLCB == 0 {
		o.MaxPerLCB = 1
	}
	if o.ImpactWeight == 0 {
		o.ImpactWeight = 1
	}
	if o.MinTarget == 0 {
		o.MinTarget = 1
	}
}

// ReconnectResult reports what the reconnection pass did.
type ReconnectResult struct {
	Attempted   int
	Reconnected int
	Reverted    int // applied but rolled back by the TNS guard
	// ResidualAbs is the summed |achieved − desired| latency error over all
	// targeted flip-flops after the pass.
	ResidualAbs float64
	Elapsed     time.Duration
}

// Reconnect realizes the scheduled latencies physically: for each targeted
// flip-flop (largest target first) it picks the LCB whose reconnection cost
// (Eq 15 plus induced impact) is lowest, within the fanout and
// once-per-LCB constraints. Predictive latencies are cleared up front, so
// every decision — and the per-move TNS guard that reverts harmful
// reconnections — is evaluated against physical reality.
func Reconnect(tm *timing.Timer, targets map[netlist.CellID]float64, o ReconnectOptions) *ReconnectResult {
	start := time.Now()
	o.defaults()
	d := tm.D
	res := &ReconnectResult{}

	// Desired absolute latency per FF, captured before any change.
	desired := map[netlist.CellID]float64{}
	order := make([]netlist.CellID, 0, len(targets))
	for ff, l := range targets {
		if l < o.MinTarget {
			continue
		}
		desired[ff] = tm.BaseLatency(ff) + l
		order = append(order, ff)
	}
	sort.Slice(order, func(i, j int) bool {
		if targets[order[i]] != targets[order[j]] {
			return targets[order[i]] > targets[order[j]]
		}
		return order[i] < order[j]
	})

	// Physical reality from here on: drop all predictive latencies.
	for _, ff := range d.FFs {
		tm.SetExtraLatency(ff, 0)
	}
	tm.Update()

	tnsPair := func() (float64, float64) {
		_, te := tm.WNSTNS(timing.Early)
		_, tl := tm.WNSTNS(timing.Late)
		return te, tl
	}

	lcbUsed := map[netlist.CellID]int{}
	ckType := func(ff netlist.CellID) float64 { return d.Cells[ff].Type.InputCap }

	for _, ff := range order {
		res.Attempted++
		target := targets[ff]
		ck := d.FFClock(ff)
		cur := d.LCBofFF(ff)
		ffPos := d.Cells[ff].Pos

		lcbDrive := d.Cells[d.LCBs[0]].Type.DriveRes
		distStar := tm.M.TargetDistance(target, ckType(ff), lcbDrive)

		// Candidate set from the distance matrix: LCBs whose distance is
		// closest to Dist*.
		type cand struct {
			lcb  netlist.CellID
			dist float64
		}
		var cands []cand
		for _, lcb := range d.LCBs {
			if lcb == cur {
				continue
			}
			if d.LCBMaxFanout > 0 && d.LCBFanout(lcb) >= d.LCBMaxFanout {
				continue
			}
			if lcbUsed[lcb] >= o.MaxPerLCB {
				continue
			}
			cands = append(cands, cand{lcb, ffPos.Manhattan(d.Cells[lcb].Pos)})
		}
		sort.Slice(cands, func(i, j int) bool {
			di := math.Abs(cands[i].dist - distStar)
			dj := math.Abs(cands[j].dist - distStar)
			if di != dj {
				return di < dj
			}
			return cands[i].lcb < cands[j].lcb
		})
		if len(cands) > o.MaxCandidates {
			cands = cands[:o.MaxCandidates]
		}

		keepCost := math.Abs(tm.BaseLatency(ff) - desired[ff])
		bestCost := keepCost
		bestLCB := netlist.NoCell
		for _, c := range cands {
			pred, impact := predictReconnect(tm, ff, cur, c.lcb)
			cost := math.Abs(pred-desired[ff]) + o.ImpactWeight*impact
			if cost < bestCost-eps {
				bestCost = cost
				bestLCB = c.lcb
			}
		}
		if bestLCB == netlist.NoCell {
			res.ResidualAbs += keepCost
			continue
		}

		beforeE, beforeL := tnsPair()
		net := d.Pins[d.LCBOut(bestLCB)].Net
		d.MovePinToNet(ck, net)
		tm.DirtyCell(ff)
		tm.DirtyCell(cur)
		tm.DirtyCell(bestLCB)
		tm.Update()

		afterE, afterL := tnsPair()
		if afterE < beforeE-eps || afterL < beforeL-eps {
			// The schedule said this latency helps, but physically the move
			// hurt one corner (granularity overshoot, co-FF impact): the
			// stage discipline of §V — improve one violation type under the
			// other's constraints — demands a rollback.
			oldNet := d.Pins[d.LCBOut(cur)].Net
			d.MovePinToNet(ck, oldNet)
			tm.DirtyCell(ff)
			tm.DirtyCell(cur)
			tm.DirtyCell(bestLCB)
			tm.Update()
			res.Reverted++
			res.ResidualAbs += math.Abs(tm.BaseLatency(ff) - desired[ff])
			continue
		}
		lcbUsed[bestLCB]++
		res.Reconnected++
		res.ResidualAbs += math.Abs(tm.BaseLatency(ff) - desired[ff])
	}

	res.Elapsed = time.Since(start)
	return res
}

// predictReconnect estimates the flip-flop's latency after reconnecting from
// LCB `from` to LCB `to`, and the summed |Δlatency| induced on the other
// flip-flops of both LCBs (the CPPR-motivated impact term of §IV-A).
func predictReconnect(tm *timing.Timer, ff, from, to netlist.CellID) (newLat, impact float64) {
	d := tm.D
	m := tm.M
	ck := d.FFClock(ff)
	ckCap := d.Pins[ck].Cap

	// Current arrival at the destination LCB's output.
	toOutNet := d.Pins[d.LCBOut(to)].Net
	toFanout := d.Nets[toOutNet].Sinks
	var toBase float64 // latency at LCB output = any sink's base − its branch
	if len(toFanout) > 0 {
		s := toFanout[0]
		sff := d.Pins[s].Cell
		toBase = tm.BaseLatency(sff) - m.SinkWireDelay(d, toOutNet, s)
	} else {
		// Empty LCB: derive from the clock root side.
		toBase = lcbOutArrival(tm, to)
	}

	dist := d.Cells[ff].Pos.Manhattan(d.Cells[to].Pos)
	addedLoad := ckCap + m.WireCap(dist)
	drive := d.Cells[to].Type.DriveRes
	// Extra LCB arc delay from the added load shifts everyone on `to`; the
	// impact term is the per-flip-flop latency shift each side sees.
	shift := drive * addedLoad
	newLat = toBase + shift + m.WireDelay(dist, ckCap)
	if len(toFanout) > 0 {
		impact += shift
	}

	// Removing the FF from `from` speeds its remaining flip-flops up.
	fromOutNet := d.Pins[d.LCBOut(from)].Net
	if fromOutNet != netlist.NoNet && len(d.Nets[fromOutNet].Sinks) > 1 {
		oldDist := d.Cells[ff].Pos.Manhattan(d.Cells[from].Pos)
		removedLoad := ckCap + m.WireCap(oldDist)
		impact += d.Cells[from].Type.DriveRes * removedLoad
	}
	return newLat, impact
}

// lcbOutArrival computes the clock arrival at an LCB's output from the root
// side, for LCBs that currently drive nothing. It mirrors the timer's
// CTS-balanced root→LCB model.
func lcbOutArrival(tm *timing.Timer, lcb netlist.CellID) float64 {
	d := tm.D
	m := tm.M
	rootOut := d.OutPin(d.ClockRoot)
	rootNet := d.Pins[rootOut].Net
	rootDelay := m.CellDelay(d.Cells[d.ClockRoot].Type, m.NetLoad(d, rootNet))
	balanced := 0.0
	for _, s := range d.Nets[rootNet].Sinks {
		if w := m.SinkWireDelay(d, rootNet, s); w > balanced {
			balanced = w
		}
	}
	outNet := d.Pins[d.LCBOut(lcb)].Net
	var load float64
	if outNet != netlist.NoNet {
		load = m.NetLoad(d, outNet)
	}
	return rootDelay + balanced + m.CellDelay(d.Cells[lcb].Type, load)
}
