package opt

import (
	"testing"

	"iterskew/internal/core"
	"iterskew/internal/netlist"
	"iterskew/internal/timing"
)

// TestReconnectGuardMonotone: the per-mode TNS guard guarantees neither
// corner's TNS ever ends worse than before the pass.
func TestReconnectGuardMonotone(t *testing.T) {
	d, _ := buildGrid(t, 300, 20, 24)
	tm := newTimer(t, d)
	res := mustCoreSchedule(t, tm, core.Options{Mode: timing.Late})

	// Snapshot the PHYSICAL baseline (without predictive latencies).
	for _, ff := range d.FFs {
		tm.SetExtraLatency(ff, 0)
	}
	tm.Update()
	_, te0 := tm.WNSTNS(timing.Early)
	_, tl0 := tm.WNSTNS(timing.Late)

	// Re-apply the schedule and run the pass (Reconnect clears extras
	// itself).
	for ff, l := range res.Target {
		tm.SetExtraLatency(ff, l)
	}
	tm.Update()
	r := Reconnect(tm, res.Target, ReconnectOptions{})

	_, te1 := tm.WNSTNS(timing.Early)
	_, tl1 := tm.WNSTNS(timing.Late)
	if te1 < te0-1e-6 {
		t.Errorf("early TNS degraded: %v -> %v (reverted=%d)", te0, te1, r.Reverted)
	}
	if tl1 < tl0-1e-6 {
		t.Errorf("late TNS degraded: %v -> %v (reverted=%d)", tl0, tl1, r.Reverted)
	}
}

// TestReconnectMinTargetFilter: tiny targets are skipped entirely.
func TestReconnectMinTargetFilter(t *testing.T) {
	d, _ := buildGrid(t, 300, 20, 24)
	tm := newTimer(t, d)
	targets := map[netlist.CellID]float64{d.FFs[0]: 0.5, d.FFs[1]: 60}
	r := Reconnect(tm, targets, ReconnectOptions{MinTarget: 1})
	if r.Attempted != 1 {
		t.Errorf("attempted %d targets, want 1 (tiny one filtered)", r.Attempted)
	}
}

// TestMoveCellsCustomSteps: a single huge step fraction is honored.
func TestMoveCellsCustomSteps(t *testing.T) {
	d, _ := buildGrid(t, 300, 20, 24)
	tm := newTimer(t, d)
	res := MoveCells(tm, MoveOptions{StepFractions: []float64{1.0}, MaxPasses: 1})
	if res.Passes > 1 {
		t.Errorf("passes = %d, want <= 1", res.Passes)
	}
	// Displacement constraint always holds.
	for i := range d.Cells {
		c := netlist.CellID(i)
		if d.Displacement(c) > d.MaxDisp+1e-9 {
			t.Errorf("cell %d displaced beyond budget", i)
		}
	}
}
