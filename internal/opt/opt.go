package opt

import (
	"iterskew/internal/netlist"
	"iterskew/internal/timing"
)

// Options bundles the two §IV techniques for one optimization phase.
type Options struct {
	Reconnect ReconnectOptions
	Move      MoveOptions
	// SkipMove disables the cell-movement refinement (used by late-phase
	// optimization, where no new early violations are expected thanks to
	// the Eq-11 headroom).
	SkipMove bool
}

// Result aggregates the phase's statistics.
type Result struct {
	Reconnect *ReconnectResult
	Move      *MoveResult
}

// Optimize realizes the scheduled latencies: LCB–FF reconnection first
// (§IV-A), then cell movement to refine any remaining or pre-existing early
// violations (§IV-B).
func Optimize(tm *timing.Timer, targets map[netlist.CellID]float64, o Options) *Result {
	res := &Result{}
	res.Reconnect = Reconnect(tm, targets, o.Reconnect)
	if !o.SkipMove {
		res.Move = MoveCells(tm, o.Move)
	}
	return res
}
