package opt

import (
	"time"

	"iterskew/internal/netlist"
	"iterskew/internal/timing"
)

// Gate sizing — the "logic path optimization" the paper names as the other
// integration target for its fast CSS. Upsizing a gate on a setup-critical
// path lowers its drive resistance (faster under load) at the cost of a
// larger input load on its predecessor; the pass accepts a swap only when
// the endpoint's measured slack improves and hold timing does not degrade.

// ResizeOptions tunes the sizing pass.
type ResizeOptions struct {
	// MaxPasses bounds the sweeps over violating endpoints (default 3).
	MaxPasses int
	// Lib resolves drive-strength variants (default netlist.StdLib()).
	Lib *netlist.Library
	// EarlyGuard rejects swaps that push early WNS below the pre-existing
	// value (always enforced; the field reserves headroom, default 0).
	EarlyGuard float64
}

// ResizeResult reports the sizing outcome.
type ResizeResult struct {
	Upsized  int
	Reverted int
	Passes   int
	Elapsed  time.Duration
}

// ResizeCells walks the worst late paths and upsizes their gates while that
// measurably improves the violating endpoint without hurting hold timing.
func ResizeCells(tm *timing.Timer, o ResizeOptions) *ResizeResult {
	start := time.Now()
	if o.MaxPasses == 0 {
		o.MaxPasses = 3
	}
	if o.Lib == nil {
		o.Lib = netlist.StdLib()
	}
	d := tm.D
	res := &ResizeResult{}

	var viol []timing.EndpointID
	for pass := 0; pass < o.MaxPasses; pass++ {
		viol = tm.ViolatedEndpoints(timing.Late, viol[:0])
		if len(viol) == 0 {
			break
		}
		res.Passes++
		improved := false
		for _, e := range viol {
			if tm.LateSlack(e) >= -eps {
				continue
			}
			path := tm.WorstPath(e, timing.Late)
			seen := map[netlist.CellID]bool{}
			for _, p := range path {
				c := d.Pins[p].Cell
				if seen[c] || d.Cells[c].Type.Kind != netlist.KindComb {
					continue
				}
				seen[c] = true
				if tryUpsize(tm, c, e, o, res) {
					improved = true
					if tm.LateSlack(e) >= -eps {
						break
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// tryUpsize attempts one drive-strength step on a cell; it keeps the swap
// only if the endpoint's late slack improves and early WNS does not drop
// below its pre-existing level.
func tryUpsize(tm *timing.Timer, c netlist.CellID, e timing.EndpointID,
	o ResizeOptions, res *ResizeResult) bool {

	d := tm.D
	cur := d.Cells[c].Type
	next := o.Lib.Upsize(cur)
	if next == nil {
		return false
	}
	before := tm.LateSlack(e)
	earlyBefore, _ := tm.WNSTNS(timing.Early)

	if !d.SwapType(c, next) {
		return false
	}
	tm.DirtyCell(c)
	tm.Update()

	after := tm.LateSlack(e)
	earlyAfter, _ := tm.WNSTNS(timing.Early)
	if after > before+eps && earlyAfter >= earlyBefore-o.EarlyGuard-eps {
		res.Upsized++
		return true
	}
	d.SwapType(c, cur)
	tm.DirtyCell(c)
	tm.Update()
	res.Reverted++
	return false
}
