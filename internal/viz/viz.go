// Package viz renders a placed design to SVG: the die, cells colored by
// their worst endpoint slack, LCB clusters with their clock branches, and
// optionally the worst violating paths — the visual debugging aid an
// open-source release of the system would ship with.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"iterskew/internal/netlist"
	"iterskew/internal/timing"
)

// Options controls the rendering.
type Options struct {
	// WidthPx is the output image width in pixels (default 1000).
	WidthPx float64
	// Mode selects the slack coloring (default Late).
	Mode timing.Mode
	// WorstPaths overlays this many worst paths (default 3; negative: none).
	WorstPaths int
	// HideClock suppresses the clock-tree edges.
	HideClock bool
}

func (o *Options) defaults() {
	if o.WidthPx == 0 {
		o.WidthPx = 1000
	}
	if o.WorstPaths == 0 {
		o.WorstPaths = 3
	}
}

// Render writes an SVG view of the timer's design.
func Render(w io.Writer, tm *timing.Timer, o Options) error {
	o.defaults()
	d := tm.D
	die := d.Die
	if die.Empty() || die.Width() <= 0 || die.Height() <= 0 {
		return fmt.Errorf("viz: design has no usable die")
	}
	scale := o.WidthPx / die.Width()
	hPx := die.Height() * scale

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		o.WidthPx, hPx, o.WidthPx, hPx)
	fmt.Fprintf(bw, `<rect width="%.0f" height="%.0f" fill="#101418"/>`+"\n", o.WidthPx, hPx)

	px := func(p netlist.PinID) (float64, float64) {
		pos := d.PinPos(p)
		return (pos.X - die.Lo.X) * scale, (die.Hi.Y - pos.Y) * scale
	}
	cx := func(c netlist.CellID) (float64, float64) {
		pos := d.Cells[c].Pos
		return (pos.X - die.Lo.X) * scale, (die.Hi.Y - pos.Y) * scale
	}

	// Worst slack per cell (endpoint cells only; others neutral).
	worst := map[netlist.CellID]float64{}
	var wnsScale float64 = 1
	for e := range tm.Endpoints() {
		ep := tm.Endpoints()[e]
		s := tm.Slack(timing.EndpointID(e), o.Mode)
		if math.IsInf(s, 0) {
			continue
		}
		worst[ep.Cell] = s
		if s < -wnsScale {
			wnsScale = -s
		}
	}

	// Clock tree.
	if !o.HideClock {
		for _, lcb := range d.LCBs {
			lx, ly := cx(lcb)
			net := d.Pins[d.LCBOut(lcb)].Net
			if net == netlist.NoNet {
				continue
			}
			for _, s := range d.Nets[net].Sinks {
				sx, sy := px(s)
				fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#2b4d6f" stroke-width="0.5"/>`+"\n",
					lx, ly, sx, sy)
			}
		}
	}

	// Combinational cells: tiny grey dots.
	for i := range d.Cells {
		c := netlist.CellID(i)
		if d.Cells[c].Type.Kind != netlist.KindComb {
			continue
		}
		x, y := cx(c)
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="0.8" fill="#3a3f46"/>`+"\n", x, y)
	}

	// Flip-flops colored by slack: green (met) → red (worst).
	for _, ff := range d.FFs {
		x, y := cx(ff)
		s, ok := worst[ff]
		fill := "#3fb950"
		if ok && s < 0 {
			t := math.Min(1, -s/wnsScale)
			fill = fmt.Sprintf("#%02x%02x30", 80+int(175*t), int(185*(1-t)+40))
		}
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="3" height="3" fill="%s"/>`+"\n", x-1.5, y-1.5, fill)
	}

	// LCBs and clock root.
	for _, lcb := range d.LCBs {
		x, y := cx(lcb)
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="5" height="5" fill="none" stroke="#58a6ff"/>`+"\n", x-2.5, y-2.5)
	}
	if d.ClockRoot != netlist.NoCell {
		x, y := cx(d.ClockRoot)
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="4" fill="none" stroke="#58a6ff" stroke-width="1.5"/>`+"\n", x, y)
	}

	// Worst-path overlays.
	if o.WorstPaths > 0 {
		for i, r := range tm.WorstPaths(o.Mode, o.WorstPaths) {
			if r.Slack >= 0 {
				break
			}
			opacity := 1.0 - 0.25*float64(i)
			var pts string
			for _, step := range r.Steps {
				x, y := px(step.Pin)
				pts += fmt.Sprintf("%.1f,%.1f ", x, y)
			}
			fmt.Fprintf(bw, `<polyline points="%s" fill="none" stroke="#f85149" stroke-width="1.2" opacity="%.2f"/>`+"\n",
				pts, opacity)
		}
	}

	fmt.Fprintf(bw, `<text x="6" y="%.0f" fill="#8b949e" font-size="12" font-family="monospace">%s | %s | %s</text>`+"\n",
		hPx-6, d.Name, o.Mode, statLine(tm, o.Mode))
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

func statLine(tm *timing.Timer, m timing.Mode) string {
	wns, tns := tm.WNSTNS(m)
	return fmt.Sprintf("WNS %.1fps TNS %.1fps", wns, tns)
}
