package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"iterskew/internal/bench"
	"iterskew/internal/delay"
	"iterskew/internal/netlist"
	"iterskew/internal/timing"
)

func renderSmall(t *testing.T, o Options) string {
	t.Helper()
	p, err := bench.Superblue("superblue18", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	d, err := bench.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := timing.New(d, delay.Default())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, tm, o); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRenderWellFormedXML(t *testing.T) {
	svg := renderSmall(t, Options{})
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{"<svg", "</svg>", "rect", "circle", "WNS"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestRenderShowsViolatingPaths(t *testing.T) {
	svg := renderSmall(t, Options{WorstPaths: 2})
	if !strings.Contains(svg, "polyline") {
		t.Error("no worst-path overlay despite violations")
	}
	svgNoPaths := renderSmall(t, Options{WorstPaths: -1})
	if strings.Contains(svgNoPaths, "polyline") {
		t.Error("path overlay present despite WorstPaths<0")
	}
}

func TestRenderHideClock(t *testing.T) {
	with := renderSmall(t, Options{})
	without := renderSmall(t, Options{HideClock: true})
	if !(len(with) > len(without)) {
		t.Error("HideClock did not reduce output")
	}
}

func TestRenderNoDie(t *testing.T) {
	d := netlist.NewDesign("empty", 1000)
	tm, err := timing.New(d, delay.Default())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, tm, Options{}); err == nil {
		t.Error("die-less design accepted")
	}
}
