package delay

import (
	"math"
	"testing"
	"testing/quick"

	"iterskew/internal/geom"
	"iterskew/internal/netlist"
)

func tableType() *netlist.CellType {
	return &netlist.CellType{
		Name: "LUT", Kind: netlist.KindComb, NumInputs: 1,
		Intrinsic: 999, DriveRes: 999, // must be ignored when a table exists
		InputCap: 1,
		DelayTable: []netlist.DelayPoint{
			{Load: 0, Delay: 10},
			{Load: 10, Delay: 25},
			{Load: 40, Delay: 100},
		},
	}
}

func TestTableDelayAtKnots(t *testing.T) {
	m := Default()
	ct := tableType()
	for _, p := range ct.DelayTable {
		if got := m.CellDelay(ct, p.Load); math.Abs(got-p.Delay) > 1e-12 {
			t.Errorf("CellDelay(%v) = %v, want %v", p.Load, got, p.Delay)
		}
	}
}

func TestTableDelayInterpolation(t *testing.T) {
	m := Default()
	ct := tableType()
	// Midpoint of the first segment.
	if got := m.CellDelay(ct, 5); math.Abs(got-17.5) > 1e-12 {
		t.Errorf("CellDelay(5) = %v, want 17.5", got)
	}
	// Midpoint of the second segment.
	if got := m.CellDelay(ct, 25); math.Abs(got-62.5) > 1e-12 {
		t.Errorf("CellDelay(25) = %v, want 62.5", got)
	}
}

func TestTableDelayExtrapolation(t *testing.T) {
	m := Default()
	ct := tableType()
	// Beyond the last knot: the last segment's slope is 2.5 ps/fF.
	if got := m.CellDelay(ct, 50); math.Abs(got-125) > 1e-12 {
		t.Errorf("CellDelay(50) = %v, want 125", got)
	}
	// Below the first knot: the first segment's slope is 1.5 ps/fF.
	if got := m.CellDelay(ct, -2); math.Abs(got-7) > 1e-12 {
		t.Errorf("CellDelay(-2) = %v, want 7", got)
	}
}

func TestTableDelaySinglePoint(t *testing.T) {
	m := Default()
	ct := &netlist.CellType{DelayTable: []netlist.DelayPoint{{Load: 5, Delay: 42}}}
	for _, load := range []float64{0, 5, 100} {
		if got := m.CellDelay(ct, load); got != 42 {
			t.Errorf("single-point table: CellDelay(%v) = %v", load, got)
		}
	}
}

func TestTableDelayMonotoneForMonotoneTable(t *testing.T) {
	m := Default()
	ct := tableType()
	f := func(a, b uint8) bool {
		la, lb := float64(a), float64(b)
		if la > lb {
			la, lb = lb, la
		}
		return m.CellDelay(ct, la) <= m.CellDelay(ct, lb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTableTypeInTimerPath: an instantiated table-characterized gate times
// with the table, not the linear parameters.
func TestTableTypeInTimerPath(t *testing.T) {
	// Assemble a one-gate net and check NetLoad-based delay via CellDelay.
	m := Default()
	lib := netlist.StdLib()
	d := netlist.NewDesign("lut", 1000)
	ct := tableType()
	in := d.AddCell("in", lib.Get("PORTIN"), geom.Pt(0, 0))
	g := d.AddCell("g", ct, geom.Pt(0, 0))
	snk := d.AddCell("snk", lib.Get("PORTOUT"), geom.Pt(0, 0))
	d.Connect("ni", d.OutPin(in), d.Cells[g].Pins[0])
	n2 := d.Connect("no", d.OutPin(g), d.Cells[snk].Pins[0])

	load := m.NetLoad(d, n2) // = PORTOUT cap (2 fF), zero wire
	want := 10 + (load/10)*15
	if got := m.CellDelay(ct, load); math.Abs(got-want) > 1e-9 {
		t.Errorf("timer-path delay = %v, want %v", got, want)
	}
}
