package delay

import (
	"math"
	"testing"
	"testing/quick"

	"iterskew/internal/geom"
	"iterskew/internal/netlist"
)

func TestWireDelayZeroLength(t *testing.T) {
	m := Default()
	if got := m.WireDelay(0, 5); got != 0 {
		t.Errorf("WireDelay(0) = %v", got)
	}
	if got := m.WireCap(0); got != 0 {
		t.Errorf("WireCap(0) = %v", got)
	}
}

func TestWireDelayMonotone(t *testing.T) {
	m := Default()
	f := func(a, b uint16, capFF uint8) bool {
		d1, d2 := float64(a), float64(b)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		c := float64(capFF)
		return m.WireDelay(d1, c) <= m.WireDelay(d2, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellDelay(t *testing.T) {
	m := Default()
	ct := &netlist.CellType{Intrinsic: 10, DriveRes: 2}
	if got := m.CellDelay(ct, 5); got != 20 {
		t.Errorf("CellDelay = %v, want 20", got)
	}
	if got := m.CellDelay(ct, 0); got != 10 {
		t.Errorf("CellDelay(no load) = %v, want 10", got)
	}
}

func TestNetLoadAndSinkDelay(t *testing.T) {
	m := Default()
	lib := netlist.StdLib()
	d := netlist.NewDesign("t", 1000)
	in := d.AddCell("in", lib.Get("PORTIN"), geom.Pt(0, 0))
	g1 := d.AddCell("g1", lib.Get("INV"), geom.Pt(100, 0))
	g2 := d.AddCell("g2", lib.Get("INV"), geom.Pt(0, 300))
	n := d.Connect("n", d.OutPin(in), d.Cells[g1].Pins[0], d.Cells[g2].Pins[0])

	inv := lib.Get("INV")
	wantLoad := inv.InputCap + m.WireCap(100) + inv.InputCap + m.WireCap(300)
	if got := m.NetLoad(d, n); math.Abs(got-wantLoad) > 1e-12 {
		t.Errorf("NetLoad = %v, want %v", got, wantLoad)
	}

	want1 := m.WireDelay(100, inv.InputCap)
	if got := m.SinkWireDelay(d, n, d.Cells[g1].Pins[0]); math.Abs(got-want1) > 1e-12 {
		t.Errorf("SinkWireDelay(g1) = %v, want %v", got, want1)
	}
	// Farther sink must have strictly larger wire delay.
	d1 := m.SinkWireDelay(d, n, d.Cells[g1].Pins[0])
	d2 := m.SinkWireDelay(d, n, d.Cells[g2].Pins[0])
	if d2 <= d1 {
		t.Errorf("farther sink not slower: %v vs %v", d1, d2)
	}
}

func TestTargetDistanceInvertsBranchLatency(t *testing.T) {
	m := Default()
	const sinkCap, driveRes = 1.5, 0.35
	f := func(latP uint16) bool {
		lat := float64(latP%500) + 1 // 1..500 ps
		dist := m.TargetDistance(lat, sinkCap, driveRes)
		back := m.BranchLatency(dist, sinkCap, driveRes)
		return math.Abs(back-lat) < 1e-6*math.Max(1, lat)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTargetDistanceEdgeCases(t *testing.T) {
	m := Default()
	if got := m.TargetDistance(0, 1, 1); got != 0 {
		t.Errorf("TargetDistance(0) = %v", got)
	}
	if got := m.TargetDistance(-5, 1, 1); got != 0 {
		t.Errorf("TargetDistance(neg) = %v", got)
	}
	// Degenerate linear model (no wire cap): latency/b.
	lin := Model{RWire: 0.01, CWire: 0}
	want := 10.0 / (0.01 * 2)
	if got := lin.TargetDistance(10, 2, 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("linear TargetDistance = %v, want %v", got, want)
	}
	// Fully degenerate model.
	zero := Model{}
	if got := zero.TargetDistance(10, 2, 0); got != 0 {
		t.Errorf("degenerate TargetDistance = %v", got)
	}
}

func TestTargetDistanceMonotone(t *testing.T) {
	m := Default()
	f := func(a, b uint16) bool {
		l1, l2 := float64(a), float64(b)
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		return m.TargetDistance(l1, 1.5, 0.35) <= m.TargetDistance(l2, 1.5, 0.35)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
