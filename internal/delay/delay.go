// Package delay implements the interconnect and cell delay models used by
// the STA engine and the slack optimizers.
//
// Wires use a star-topology Elmore model: each sink of a net is connected to
// the driver by a dedicated wire of length equal to the Manhattan
// pin-to-pin distance. The driving cell sees the sum of wire and pin
// capacitances as its load; each sink additionally sees the distributed RC
// delay of its own branch:
//
//	cellDelay  = Intrinsic + DriveRes · loadCap(net)
//	wireDelay  = RWire·dist · (CWire·dist/2 + sinkPinCap)
//
// The model is invertible, which is what the paper's Eq. (16)
// (Dist* = Elmore(l*)) needs for LCB–FF reconnection: TargetDistance returns
// the wire length that produces a requested latency increase.
package delay

import (
	"math"

	"iterskew/internal/netlist"
)

// Model holds the per-unit-length interconnect parameters and the analysis
// derates.
type Model struct {
	RWire float64 // wire resistance, ps/(fF·DBU)
	CWire float64 // wire capacitance, fF/DBU

	// DerateEarly and DerateLate scale every data arc's delay in the early
	// (min/hold) and late (max/setup) analyses respectively — the
	// best-case/worst-case corner split of production STA (OCV-lite).
	// Zero values mean 1.0 (single-corner analysis).
	DerateEarly float64
	DerateLate  float64
}

// Default returns the interconnect model calibrated for the synthetic
// benchmarks: a 200-DBU wire contributes ≈14 ps of its own delay and ≈10 fF
// of load, comparable in magnitude to a gate delay — the regime in which the
// contest designs operate. Single-corner (derates 1.0).
func Default() Model {
	return Model{RWire: 0.01, CWire: 0.05}
}

// Derated returns the default model with a best-/worst-case corner split:
// early arcs at `early`× and late arcs at `late`× nominal delay.
func Derated(early, late float64) Model {
	m := Default()
	m.DerateEarly = early
	m.DerateLate = late
	return m
}

// WireCap returns the capacitance of a wire of the given length.
func (m Model) WireCap(dist float64) float64 { return m.CWire * dist }

// WireDelay returns the Elmore delay of a branch of the given length driving
// sinkCap at its far end.
func (m Model) WireDelay(dist, sinkCap float64) float64 {
	return m.RWire * dist * (m.CWire*dist/2 + sinkCap)
}

// CellDelay returns the load-dependent delay of a cell arc: the NLDM-lite
// table interpolation when the type is characterized, the linear
// Intrinsic + DriveRes·load model otherwise.
func (m Model) CellDelay(t *netlist.CellType, load float64) float64 {
	if n := len(t.DelayTable); n > 0 {
		return interpTable(t.DelayTable, load)
	}
	return t.Intrinsic + t.DriveRes*load
}

// interpTable evaluates a piecewise-linear (load, delay) table, linearly
// extrapolating beyond its ends (flat for single-point tables).
func interpTable(tab []netlist.DelayPoint, load float64) float64 {
	n := len(tab)
	if n == 1 {
		return tab[0].Delay
	}
	// Find the segment: the last i with tab[i].Load <= load, clamped so an
	// end segment extrapolates.
	i := 0
	for i < n-2 && tab[i+1].Load <= load {
		i++
	}
	a, b := tab[i], tab[i+1]
	if b.Load == a.Load {
		return a.Delay
	}
	frac := (load - a.Load) / (b.Load - a.Load)
	return a.Delay + frac*(b.Delay-a.Delay)
}

// NetLoad returns the total capacitance seen by the driver of net n: all
// sink pin capacitances plus all branch wire capacitances.
func (m Model) NetLoad(d *netlist.Design, n netlist.NetID) float64 {
	net := &d.Nets[n]
	if net.Driver == netlist.NoPin {
		return 0
	}
	dp := d.PinPos(net.Driver)
	var load float64
	for _, s := range net.Sinks {
		load += d.Pins[s].Cap + m.WireCap(dp.Manhattan(d.PinPos(s)))
	}
	return load
}

// SinkWireDelay returns the interconnect delay from the driver of net n to
// the given sink pin.
func (m Model) SinkWireDelay(d *netlist.Design, n netlist.NetID, sink netlist.PinID) float64 {
	net := &d.Nets[n]
	dist := d.PinPos(net.Driver).Manhattan(d.PinPos(sink))
	return m.WireDelay(dist, d.Pins[sink].Cap)
}

// TargetDistance inverts the latency model of an LCB branch: it returns the
// wire length whose combined effect — extra load on the driver plus the
// branch's own Elmore delay — produces the requested latency increase.
// driveRes is the driver's drive resistance (the extra-load term
// driveRes·CWire·dist), sinkCap the reconnected pin's capacitance. A
// non-positive latency maps to distance 0.
func (m Model) TargetDistance(latency, sinkCap, driveRes float64) float64 {
	if latency <= 0 {
		return 0
	}
	// a·x² + b·x − latency = 0 with a = RWire·CWire/2,
	// b = RWire·sinkCap + driveRes·CWire.
	a := m.RWire * m.CWire / 2
	b := m.RWire*sinkCap + driveRes*m.CWire
	if a == 0 {
		if b == 0 {
			return 0
		}
		return latency / b
	}
	return (-b + math.Sqrt(b*b+4*a*latency)) / (2 * a)
}

// BranchLatency is the forward form of TargetDistance: the latency increase
// produced by a branch of the given length.
func (m Model) BranchLatency(dist, sinkCap, driveRes float64) float64 {
	return m.WireDelay(dist, sinkCap) + driveRes*m.WireCap(dist)
}
