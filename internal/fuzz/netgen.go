// Package fuzz is the adversarial netlist generator and the fuzzing harness
// for the clock skew scheduling stack. It extends the benchmark generator
// (internal/bench, previously reachable only through cmd/netgen) into a
// seedable library of hostile topologies — dense cycles, reconvergent
// fanout, hold-dominated clocking, disconnected islands, degenerate loops —
// and drives every scheduler over them under the internal/oracle invariant
// checker (see the Fuzz* and Test* functions).
package fuzz

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"iterskew/internal/bench"
	"iterskew/internal/delay"
	"iterskew/internal/geom"
	"iterskew/internal/netlist"
	"iterskew/internal/timing"
)

// Topology selects one adversarial netlist family.
type Topology int

// The generated families. Each stresses a different scheduler code path.
const (
	// TopoMixedBench is the contest-like random-logic profile from
	// internal/bench: the baseline population.
	TopoMixedBench Topology = iota
	// TopoRing builds register rings with cross-ring chords: the sequential
	// graph is a mesh of overlapping directed cycles (§III-B2 territory).
	TopoRing
	// TopoReconvergent feeds every capture from a small shared gate mesh:
	// every launch reaches every capture through common gates, the densest
	// possible sequential graph.
	TopoReconvergent
	// TopoHoldHeavy clocks captures from a distant LCB so short local data
	// paths violate hold by hundreds of ps (the Eq-11 safety regime).
	TopoHoldHeavy
	// TopoIslands mixes disjoint flip-flop groups, single-gate self-loops
	// and completely unconnected flip-flops (infinite-slack endpoints).
	TopoIslands
	// TopoSingleLoop is one flip-flop looping onto itself through a gate —
	// the minimal cycle-limited design.
	TopoSingleLoop

	numTopologies
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case TopoMixedBench:
		return "mixed"
	case TopoRing:
		return "ring"
	case TopoReconvergent:
		return "reconvergent"
	case TopoHoldHeavy:
		return "holdheavy"
	case TopoIslands:
		return "islands"
	case TopoSingleLoop:
		return "singleloop"
	}
	return fmt.Sprintf("topology(%d)", int(t))
}

// ParseTopology inverts String.
func ParseTopology(s string) (Topology, error) {
	for t := Topology(0); t < numTopologies; t++ {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown topology %q (want mixed, ring, reconvergent, holdheavy, islands or singleloop)", s)
}

// Config describes one generated netlist.
type Config struct {
	Topology Topology
	// FFs is the flip-flop count (clamped to [1, 48]; ports may add a few
	// dedicated capture flip-flops on top).
	FFs int
	// Ports adds this many input and output ports (where the topology
	// supports them).
	Ports int
	// Seed drives every random choice; equal configs generate equal designs.
	Seed int64
	// PeriodScale multiplies the auto-calibrated clock period (default 1):
	// below 1 the design starts violation-rich, above 1 violation-poor.
	PeriodScale float64
}

// FromSeed derives a deterministic adversarial Config from one fuzzer seed,
// covering every topology and a spread of sizes and period pressures.
func FromSeed(seed int64) Config {
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	return Config{
		Topology:    Topology(rng.Intn(int(numTopologies))),
		FFs:         4 + rng.Intn(33),
		Ports:       rng.Intn(3),
		Seed:        seed,
		PeriodScale: 0.8 + 0.4*rng.Float64(),
	}
}

// Generate builds the netlist for a config. The result always passes
// netlist.Validate; degenerate inputs for the schedulers' typed-error paths
// (zero flip-flops, direct self-loops, period 0) are built explicitly by the
// tests instead.
func Generate(cfg Config) (*netlist.Design, error) {
	if cfg.FFs < 1 {
		cfg.FFs = 1
	}
	if cfg.FFs > 48 {
		cfg.FFs = 48
	}
	if cfg.PeriodScale <= 0 {
		cfg.PeriodScale = 1
	}
	if cfg.Topology == TopoMixedBench {
		p := bench.Profile{
			Name: fmt.Sprintf("fuzz-mixed-%d", cfg.Seed),
			FFs:  maxInt(cfg.FFs, 8),
			Seed: cfg.Seed,
		}
		d, err := bench.Generate(p)
		if err != nil {
			return nil, err
		}
		d.Period *= cfg.PeriodScale
		return d, nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed*2654435761 + int64(cfg.Topology)))
	g := newGen(fmt.Sprintf("fuzz-%s-%d", cfg.Topology, cfg.Seed), cfg.FFs, rng)
	switch cfg.Topology {
	case TopoRing:
		g.buildRings(cfg.FFs)
	case TopoReconvergent:
		g.buildReconvergent(cfg.FFs)
	case TopoHoldHeavy:
		g.buildHoldHeavy(cfg.FFs)
	case TopoIslands:
		g.buildIslands(cfg.FFs)
	case TopoSingleLoop:
		g.buildSingleLoop()
	default:
		return nil, fmt.Errorf("fuzz: unknown topology %v", cfg.Topology)
	}
	if cfg.Topology != TopoSingleLoop {
		g.addPorts(cfg.Ports)
	}
	return g.finish(cfg)
}

// BenchDesign resolves cmd/netgen's profile selection: a scaled superblue
// profile when name is set, a custom profile otherwise.
func BenchDesign(name string, scale float64, ffs int, seed int64) (*netlist.Design, error) {
	var p bench.Profile
	if name != "" {
		var err error
		p, err = bench.Superblue(name, scale)
		if err != nil {
			return nil, err
		}
	} else {
		p = bench.Profile{Name: fmt.Sprintf("custom-%d", ffs), FFs: ffs, Seed: seed}
	}
	return bench.Generate(p)
}

// gen carries the clock scaffolding shared by the adversarial builders.
type gen struct {
	d       *netlist.Design
	lib     *netlist.Library
	rng     *rand.Rand
	lcbs    []netlist.CellID
	clkNets []netlist.NetID
	side    float64
	nGate   int
}

func newGen(name string, nFF int, rng *rand.Rand) *gen {
	lib := netlist.StdLib()
	d := netlist.NewDesign(name, 0)
	side := 3000.0
	d.Die = geom.RectOf(geom.Pt(0, 0), geom.Pt(side, side))
	d.MaxDisp = 400
	d.LCBMaxFanout = 50
	g := &gen{d: d, lib: lib, rng: rng, side: side}

	root := d.AddCell("clkroot", lib.Get("CLKROOT"), d.Die.Center())
	nLCB := 2 + nFF/40
	var lcbIns []netlist.PinID
	for i := 0; i < nLCB; i++ {
		// LCBs spread along the diagonal so "distant LCB" clocking has real
		// wire length behind it.
		t := (float64(i) + 0.5) / float64(nLCB)
		lcb := d.AddCell(fmt.Sprintf("lcb%d", i), lib.Get("LCB"), geom.Pt(side*t, side*t))
		g.lcbs = append(g.lcbs, lcb)
		lcbIns = append(lcbIns, d.LCBIn(lcb))
	}
	cn := d.Connect("clk_root", d.OutPin(root), lcbIns...)
	d.Nets[cn].IsClock = true
	for i, l := range g.lcbs {
		cl := d.Connect(fmt.Sprintf("clk_l%d", i), d.LCBOut(l))
		d.Nets[cl].IsClock = true
		g.clkNets = append(g.clkNets, cl)
	}
	return g
}

// addFF places a flip-flop and clocks it from the given LCB (or the nearest
// one with capacity when lcb < 0).
func (g *gen) addFF(pos geom.Point, lcb int) netlist.CellID {
	d := g.d
	pos = d.Die.Clamp(pos)
	ff := d.AddCell(fmt.Sprintf("ff%d", len(d.FFs)), g.lib.Get("DFF"), pos)
	if lcb < 0 {
		lcb = 0
		best := math.Inf(1)
		for i, l := range g.lcbs {
			if d.LCBFanout(l) >= d.LCBMaxFanout {
				continue
			}
			if dd := pos.Manhattan(d.Cells[l].Pos); dd < best {
				best, lcb = dd, i
			}
		}
	}
	d.AddSink(g.clkNets[lcb], d.FFClock(ff))
	return ff
}

// connect attaches sinks to the driver's net, creating it on first use.
func (g *gen) connect(drv netlist.PinID, sinks ...netlist.PinID) {
	if n := g.d.Pins[drv].Net; n != netlist.NoNet {
		for _, s := range sinks {
			g.d.AddSink(n, s)
		}
		return
	}
	g.d.Connect("n", drv, sinks...)
}

// chain builds depth random gates from src to dst along the straight line
// between their owners.
func (g *gen) chain(src, dst netlist.PinID, depth int) {
	d := g.d
	srcPos := d.Cells[d.Pins[src].Cell].Pos
	dstPos := d.Cells[d.Pins[dst].Cell].Pos
	prev := src
	for j := 0; j < depth; j++ {
		t := float64(j+1) / float64(depth+1)
		pos := geom.Pt(srcPos.X+(dstPos.X-srcPos.X)*t, srcPos.Y+(dstPos.Y-srcPos.Y)*t)
		jx := (g.rng.Float64()*2 - 1) * 30
		jy := (g.rng.Float64()*2 - 1) * 30
		ct := g.lib.Comb[g.rng.Intn(len(g.lib.Comb))]
		gc := d.AddCell(fmt.Sprintf("fg%d", g.nGate), ct, d.Die.Clamp(pos.Add(geom.Pt(jx, jy))))
		g.nGate++
		ins := make([]netlist.PinID, ct.NumInputs)
		for k := range ins {
			ins[k] = d.Cells[gc].Pins[k]
		}
		g.connect(prev, ins...)
		prev = d.OutPin(gc)
	}
	g.connect(prev, dst)
}

// merge2 drives dst from a two-input gate fed by two sources (through short
// chains), giving dst reconvergent fanin.
func (g *gen) merge2(a, b, dst netlist.PinID) {
	d := g.d
	pos := d.Cells[d.Pins[dst].Cell].Pos
	mg := d.AddCell(fmt.Sprintf("fm%d", g.nGate), g.lib.Get("NAND2"), d.Die.Clamp(pos.Add(geom.Pt(-40, 20))))
	g.nGate++
	g.chain(a, d.Cells[mg].Pins[0], g.rng.Intn(3))
	g.chain(b, d.Cells[mg].Pins[1], g.rng.Intn(2))
	g.connect(d.OutPin(mg), dst)
}

// buildRings distributes the flip-flops over register rings and wires each
// ring as a cycle; ~40% of captures additionally merge a chord from a random
// flip-flop anywhere in the design.
func (g *gen) buildRings(nFF int) {
	d := g.d
	ringLen := 3 + g.rng.Intn(4)
	var ffs []netlist.CellID
	ring := 0
	for len(ffs) < nFF {
		n := minInt(ringLen, nFF-len(ffs))
		if n < 2 {
			n = 2
		}
		radius := g.side * (0.12 + 0.1*float64(ring))
		for i := 0; i < n; i++ {
			a := 2 * math.Pi * float64(i) / float64(n)
			ffs = append(ffs, g.addFF(d.Die.Center().Add(geom.Pt(radius*math.Cos(a), radius*math.Sin(a))), -1))
		}
		ring++
	}
	// Wire ring by ring over the flat creation order.
	for lo := 0; lo < len(ffs); {
		n := minInt(ringLen, len(ffs)-lo)
		if n < 2 {
			n = len(ffs) - lo
		}
		for i := 0; i < n; i++ {
			u := ffs[lo+i]
			v := ffs[lo+(i+1)%n]
			if g.rng.Float64() < 0.4 {
				chord := ffs[g.rng.Intn(len(ffs))]
				g.merge2(d.FFQ(u), d.FFQ(chord), d.FFData(v))
			} else {
				g.chain(d.FFQ(u), d.FFData(v), 1+g.rng.Intn(3))
			}
		}
		lo += n
	}
}

// buildReconvergent funnels every launch through a narrow shared mesh that
// every capture taps: each (launch, capture) pair is connected through
// common gates.
func (g *gen) buildReconvergent(nFF int) {
	d := g.d
	center := d.Die.Center()
	var ffs []netlist.CellID
	for i := 0; i < nFF; i++ {
		a := 2 * math.Pi * float64(i) / float64(nFF)
		r := g.side * 0.15
		ffs = append(ffs, g.addFF(center.Add(geom.Pt(r*math.Cos(a), r*math.Sin(a))), -1))
	}
	prev := make([]netlist.PinID, 0, nFF)
	for _, ff := range ffs {
		inv := d.AddCell(fmt.Sprintf("fh%d", g.nGate), g.lib.Get("INV"), center.Add(geom.Pt(-60, float64(len(prev))*8)))
		g.nGate++
		g.connect(d.FFQ(ff), d.Cells[inv].Pins[0])
		prev = append(prev, d.OutPin(inv))
	}
	layers := 2 + g.rng.Intn(2)
	width := maxInt(3, nFF/2)
	for s := 0; s < layers; s++ {
		cur := make([]netlist.PinID, 0, width)
		for w := 0; w < width; w++ {
			mg := d.AddCell(fmt.Sprintf("fh%d", g.nGate), g.lib.Get("NAND2"),
				center.Add(geom.Pt(float64(s)*50, float64(w)*10-100)))
			g.nGate++
			g.connect(prev[g.rng.Intn(len(prev))], d.Cells[mg].Pins[0])
			g.connect(prev[g.rng.Intn(len(prev))], d.Cells[mg].Pins[1])
			cur = append(cur, d.OutPin(mg))
		}
		prev = cur
	}
	for _, ff := range ffs {
		g.chain(prev[g.rng.Intn(len(prev))], d.FFData(ff), g.rng.Intn(2))
	}
}

// buildHoldHeavy builds launch/capture pairs that sit next to each other but
// are clocked from LCBs at opposite ends of the die: the capture's long
// clock branch turns the one-gate data path into a deep hold violation.
// Half the pairs get a long return path, so fixing the hold violation by
// raising the launch competes with a setup check.
func (g *gen) buildHoldHeavy(nFF int) {
	d := g.d
	n := len(g.lcbs)
	for i := 0; i+1 < nFF; i += 2 {
		near := (i / 2) % n
		far := (near + n/2 + 1) % n
		base := d.Cells[g.lcbs[near]].Pos
		launch := g.addFF(base.Add(geom.Pt(30, -20)), near)
		capture := g.addFF(base.Add(geom.Pt(80, 25)), far)
		g.chain(d.FFQ(launch), d.FFData(capture), 1)
		if g.rng.Float64() < 0.5 {
			g.chain(d.FFQ(capture), d.FFData(launch), 4+g.rng.Intn(4))
		}
	}
	if nFF%2 == 1 {
		ff := g.addFF(d.Die.Center(), -1)
		g.chain(d.FFQ(ff), d.FFData(ff), 1)
	}
}

// buildIslands mixes disjoint sequential groups, self-loop singletons and
// flip-flops with no data connectivity at all (their endpoints keep +Inf
// slack and must not confuse any scheduler).
func (g *gen) buildIslands(nFF int) {
	d := g.d
	remaining := nFF
	island := 0
	for remaining > 0 {
		r := g.rng.Float64()
		pos := geom.Pt(g.side*0.15+g.rng.Float64()*g.side*0.7, g.side*0.15+g.rng.Float64()*g.side*0.7)
		switch {
		case r < 0.6 && remaining >= 2:
			n := minInt(2+g.rng.Intn(3), remaining)
			var ffs []netlist.CellID
			for i := 0; i < n; i++ {
				a := 2 * math.Pi * float64(i) / float64(n)
				ffs = append(ffs, g.addFF(pos.Add(geom.Pt(120*math.Cos(a), 120*math.Sin(a))), -1))
			}
			for i := range ffs {
				g.chain(d.FFQ(ffs[i]), d.FFData(ffs[(i+1)%n]), 1+g.rng.Intn(2))
			}
			remaining -= n
		case r < 0.85:
			ff := g.addFF(pos, -1)
			g.chain(d.FFQ(ff), d.FFData(ff), 1+g.rng.Intn(2))
			remaining--
		default:
			g.addFF(pos, -1) // clock only: no data pins connected
			remaining--
		}
		island++
	}
}

// buildSingleLoop is the degenerate-but-valid minimum: one flip-flop, one
// gate, one cycle.
func (g *gen) buildSingleLoop() {
	ff := g.addFF(g.d.Die.Center(), 0)
	g.chain(g.d.FFQ(ff), g.d.FFData(ff), 1)
}

// addPorts adds n input ports (each feeding a dedicated capture flip-flop)
// and n output ports (each capturing from a random flip-flop), with random
// external delays.
func (g *gen) addPorts(n int) {
	d := g.d
	for i := 0; i < n; i++ {
		y := g.side * (0.2 + 0.6*g.rng.Float64())
		in := d.AddCell(fmt.Sprintf("fin%d", i), g.lib.Get("PORTIN"), geom.Pt(0, y))
		ff := g.addFF(geom.Pt(g.side*0.1, y), -1)
		g.chain(d.OutPin(in), d.FFData(ff), 1+g.rng.Intn(2))
		d.SetInputDelay(in, g.rng.Float64()*40)

		out := d.AddCell(fmt.Sprintf("fout%d", i), g.lib.Get("PORTOUT"), geom.Pt(g.side, y))
		src := d.FFs[g.rng.Intn(len(d.FFs))]
		g.chain(d.FFQ(src), d.Cells[out].Pins[0], 1+g.rng.Intn(2))
		d.SetOutputDelay(out, g.rng.Float64()*40)
	}
}

// finish validates the design and calibrates the period from a throwaway
// timer: the 90th percentile of per-endpoint critical periods, scaled by
// PeriodScale — violation-rich below 1, mostly clean above.
func (g *gen) finish(cfg Config) (*netlist.Design, error) {
	d := g.d
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("fuzz: generated design invalid: %w", err)
	}
	tm, err := timing.New(d, delay.Default())
	if err != nil {
		return nil, fmt.Errorf("fuzz: calibration timer: %w", err)
	}
	var tcrit []float64
	var latSum float64
	for _, ff := range d.FFs {
		latSum += tm.BaseLatency(ff)
		at := tm.ArrivalMax(d.FFData(ff))
		if math.IsInf(at, 0) {
			continue
		}
		tcrit = append(tcrit, at-tm.Latency(ff)+d.Cells[ff].Type.Setup)
	}
	if len(tcrit) == 0 {
		d.Period = 600 * cfg.PeriodScale
	} else {
		sort.Float64s(tcrit)
		p := tcrit[int(float64(len(tcrit))*0.9)] * cfg.PeriodScale
		d.Period = math.Max(p, 100)
	}
	if len(d.FFs) > 0 {
		d.PortLatency = latSum / float64(len(d.FFs))
	}
	return d, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
