package fuzz

import (
	"math"
	"testing"

	"iterskew/internal/delay"
	"iterskew/internal/netlist"
	"iterskew/internal/oracle"
	"iterskew/internal/timing"
)

// closedTopologies are the generator shapes with no primary ports, so every
// clock-domain cell is a flip-flop and a uniform latency shift is observable
// as a pure no-op. Mixed-bench designs always carry ports and are excluded.
var closedTopologies = []Topology{TopoRing, TopoReconvergent, TopoHoldHeavy, TopoIslands, TopoSingleLoop}

func closedDesign(t *testing.T, topo Topology, seed int64) *netlist.Design {
	t.Helper()
	d, err := Generate(Config{Topology: topo, FFs: 12, Ports: 0, Seed: seed})
	if err != nil {
		t.Fatalf("%v: %v", topo, err)
	}
	return d
}

// TestMetamorphicUniformShift: adding the same extra latency to every
// flip-flop of a port-free design must leave every slack untouched — only
// latency differences enter Eqs (1)–(2).
func TestMetamorphicUniformShift(t *testing.T) {
	const shift = 137.0
	for _, topo := range closedTopologies {
		t.Run(topo.String(), func(t *testing.T) {
			d := closedDesign(t, topo, 9)
			tm := newTimer(t, d)
			type pair struct{ late, early float64 }
			base := make([]pair, len(tm.Endpoints()))
			for i := range tm.Endpoints() {
				id := timing.EndpointID(i)
				base[i] = pair{tm.LateSlack(id), tm.EarlySlack(id)}
			}
			for _, ff := range d.FFs {
				tm.AddExtraLatency(ff, shift)
			}
			tm.Update()
			for i := range tm.Endpoints() {
				id := timing.EndpointID(i)
				if !slackNear(tm.LateSlack(id), base[i].late, 1e-6) {
					t.Errorf("late slack at endpoint %d moved: %v → %v", i, base[i].late, tm.LateSlack(id))
				}
				if !slackNear(tm.EarlySlack(id), base[i].early, 1e-6) {
					t.Errorf("early slack at endpoint %d moved: %v → %v", i, base[i].early, tm.EarlySlack(id))
				}
			}

			// The oracle must be invariant under the same shift.
			g, err := oracle.Extract(d, tm.M)
			if err != nil {
				t.Fatal(err)
			}
			extra := map[netlist.CellID]float64{}
			for _, ff := range d.FFs {
				extra[ff] = shift
			}
			o0, o1 := g.EndpointSlacks(true, nil), g.EndpointSlacks(true, extra)
			for cell, s := range o0 {
				if !slackNear(o1[cell], s, 1e-6) {
					t.Errorf("oracle late slack at %d moved under uniform shift: %v → %v", cell, s, o1[cell])
				}
			}
		})
	}
}

// TestMetamorphicPeriodShift: increasing the clock period by Δ must raise
// every finite setup slack by exactly Δ and leave hold slacks alone — the
// period only enters the late required time.
func TestMetamorphicPeriodShift(t *testing.T) {
	const dT = 250.0
	for _, topo := range closedTopologies {
		t.Run(topo.String(), func(t *testing.T) {
			d := closedDesign(t, topo, 21)
			tm := newTimer(t, d)
			type pair struct{ late, early float64 }
			base := make([]pair, len(tm.Endpoints()))
			for i := range tm.Endpoints() {
				id := timing.EndpointID(i)
				base[i] = pair{tm.LateSlack(id), tm.EarlySlack(id)}
			}
			// SetPeriod is the state-local what-if: the shared design is
			// untouched and required times re-drain incrementally.
			tm.SetPeriod(d.Period + dT)
			for i := range tm.Endpoints() {
				id := timing.EndpointID(i)
				wantLate := base[i].late + dT
				if math.IsInf(base[i].late, 1) {
					wantLate = base[i].late
				}
				if !slackNear(tm.LateSlack(id), wantLate, 1e-6) {
					t.Errorf("late slack at endpoint %d: got %v, want %v", i, tm.LateSlack(id), wantLate)
				}
				if !slackNear(tm.EarlySlack(id), base[i].early, 1e-6) {
					t.Errorf("early slack at endpoint %d moved with the period: %v → %v", i, base[i].early, tm.EarlySlack(id))
				}
			}
		})
	}
}

// TestMetamorphicDerateMonotone: inflating the late derate can only lower
// setup slacks; deflating the early derate can only lower hold slacks.
// Derates scale cell and wire delays, so no slack may improve.
func TestMetamorphicDerateMonotone(t *testing.T) {
	for _, topo := range closedTopologies {
		t.Run(topo.String(), func(t *testing.T) {
			d := closedDesign(t, topo, 33)
			tm := newTimer(t, d)
			m2 := delay.Default()
			m2.DerateLate = 1.15
			m2.DerateEarly = 0.85
			tm2, err := timing.New(d, m2)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tm.Endpoints() {
				id := timing.EndpointID(i)
				if l0, l1 := tm.LateSlack(id), tm2.LateSlack(id); !slackWorse(l1, l0) {
					t.Errorf("late slack at endpoint %d improved under derate: %v → %v", i, l0, l1)
				}
				if e0, e1 := tm.EarlySlack(id), tm2.EarlySlack(id); !slackWorse(e1, e0) {
					t.Errorf("early slack at endpoint %d improved under derate: %v → %v", i, e0, e1)
				}
			}
		})
	}
}

func slackNear(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

// slackWorse reports whether a ≤ b, treating +Inf endpoints (no constrained
// path) as equal.
func slackWorse(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return a <= b+1e-9
}
