package fuzz

import (
	"errors"
	"math"
	"os"
	"strconv"
	"testing"

	"iterskew/internal/core"
	"iterskew/internal/delay"
	"iterskew/internal/fpm"
	"iterskew/internal/geom"
	"iterskew/internal/iccss"
	"iterskew/internal/netlist"
	"iterskew/internal/oracle"
	"iterskew/internal/timing"
)

func newTimer(t testing.TB, d *netlist.Design) *timing.Timer {
	t.Helper()
	tm, err := timing.New(d, delay.Default())
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func generateFor(t testing.TB, seed int64) *netlist.Design {
	t.Helper()
	cfg := FromSeed(seed)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatalf("seed %d (%+v): %v", seed, cfg, err)
	}
	return d
}

// seedOutcome summarizes the late-mode gap result of one seed for
// TestOracleAgreement's tally.
type seedOutcome struct {
	optimal   bool // worst setup slack within tolerance of the LP optimum
	explained bool // gap fully explained by the checker
}

// checkSchedulers runs every scheduling algorithm over one fuzzed design and
// validates each result with the oracle invariant checker. Violations are
// reported through t.Errorf with the seed, so any failing seed reproduces
// with a one-line test filter.
func checkSchedulers(t *testing.T, seed int64) seedOutcome {
	t.Helper()
	d := generateFor(t, seed)
	var out seedOutcome

	// The iterative scheduler, both modes, against the LP optimum.
	for _, mode := range []timing.Mode{timing.Late, timing.Early} {
		tm := newTimer(t, d)
		chk, err := oracle.NewChecker(tm, oracle.CheckOptions{Mode: mode, GapCheck: true})
		if err != nil {
			t.Fatalf("seed %d core/%v checker: %v", seed, mode, err)
		}
		res, err := core.Schedule(tm, core.Options{Mode: mode, StallRounds: -1})
		if err != nil {
			t.Fatalf("seed %d core/%v: %v", seed, mode, err)
		}
		rep := chk.Check(tm, res.Target, res.CycleFixes)
		for _, f := range rep.Findings {
			t.Errorf("seed %d core/%v: %s", seed, mode, f)
		}
		if mode == timing.Late {
			out.optimal = rep.Gap <= 2e-6
			out.explained = rep.GapExplained
		}
	}

	// IC-CSS+: invariants only (it aims for the same fixpoint but makes no
	// per-round optimality promise we can gap-check).
	tm := newTimer(t, d)
	chk, err := oracle.NewChecker(tm, oracle.CheckOptions{Mode: timing.Late})
	if err != nil {
		t.Fatalf("seed %d iccss checker: %v", seed, err)
	}
	ires, err := iccss.Schedule(tm, iccss.Options{Mode: timing.Late})
	if err != nil {
		t.Fatalf("seed %d iccss: %v", seed, err)
	}
	for _, f := range chk.Check(tm, ires.Target, ires.CycleFixes).Findings {
		t.Errorf("seed %d iccss: %s", seed, f)
	}

	// FPM: single-shot hold-mode predictive pass, invariants only.
	tm = newTimer(t, d)
	chk, err = oracle.NewChecker(tm, oracle.CheckOptions{Mode: timing.Early})
	if err != nil {
		t.Fatalf("seed %d fpm checker: %v", seed, err)
	}
	fres, err := fpm.Schedule(tm, fpm.Options{})
	if err != nil {
		t.Fatalf("seed %d fpm: %v", seed, err)
	}
	for _, f := range chk.Check(tm, fres.Target, nil).Findings {
		t.Errorf("seed %d fpm: %s", seed, f)
	}
	return out
}

// FuzzSchedule drives every scheduler over adversarial netlists derived from
// the fuzzed seed and fails on any invariant violation, panic, or
// unexplained optimality gap.
func FuzzSchedule(f *testing.F) {
	for seed := int64(0); seed < 10; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkSchedulers(t, seed)
	})
}

// edgeKey identifies a sequential edge by its vertex pair.
type edgeKey struct{ l, c netlist.CellID }

// checkExtraction cross-validates every extraction primitive on one fuzzed
// design against the oracle's full graph: per-source and per-capture
// extraction must reproduce the full graph exactly, batch extraction must be
// byte-identical to serial, and essential extraction must return exactly the
// below-margin edges.
func checkExtraction(t *testing.T, seed int64) {
	t.Helper()
	d := generateFor(t, seed)
	tm := newTimer(t, d)
	g, err := oracle.Extract(d, tm.M)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	full := map[timing.Mode]map[edgeKey]float64{timing.Late: {}, timing.Early: {}}
	for _, e := range g.Late {
		full[timing.Late][edgeKey{e.Launch, e.Capture}] = e.Delay
	}
	for _, e := range g.Early {
		full[timing.Early][edgeKey{e.Launch, e.Capture}] = e.Delay
	}

	launches := append(append([]netlist.CellID{}, d.FFs...), d.InPorts...)
	captures := append(append([]netlist.CellID{}, d.FFs...), d.OutPorts...)
	var endpoints []timing.EndpointID
	for i := range tm.Endpoints() {
		endpoints = append(endpoints, timing.EndpointID(i))
	}
	const margin = 25.0

	for _, mode := range []timing.Mode{timing.Late, timing.Early} {
		want := full[mode]
		late := mode == timing.Late

		var serial []timing.SeqEdge
		matched := 0
		for _, l := range launches {
			for _, e := range tm.ExtractAllFrom(l, mode, nil) {
				serial = append(serial, e)
				od, ok := want[edgeKey{e.Launch, e.Capture}]
				if !ok {
					t.Errorf("seed %d %v: timer edge %d→%d not in the full graph", seed, mode, e.Launch, e.Capture)
					continue
				}
				if math.Abs(od-e.Delay) > 1e-6 {
					t.Errorf("seed %d %v: edge %d→%d delay %v, oracle %v", seed, mode, e.Launch, e.Capture, e.Delay, od)
				}
				matched++
			}
		}
		if matched != len(want) {
			t.Errorf("seed %d %v: per-source extraction found %d edges, oracle graph has %d", seed, mode, matched, len(want))
		}

		for _, w := range []int{1, 3, 8} {
			batch := tm.ExtractAllFromBatch(launches, mode, w, nil)
			if !equalEdges(batch, serial) {
				t.Errorf("seed %d %v: batch extraction (workers=%d) differs from serial", seed, mode, w)
			}
		}

		into := 0
		for _, cc := range captures {
			for _, e := range tm.ExtractAllInto(cc, mode, nil) {
				od, ok := want[edgeKey{e.Launch, e.Capture}]
				if !ok || math.Abs(od-e.Delay) > 1e-6 {
					t.Errorf("seed %d %v: backward edge %d→%d delay %v, oracle %v (known=%v)",
						seed, mode, e.Launch, e.Capture, e.Delay, od, ok)
					continue
				}
				into++
			}
		}
		if into != len(want) {
			t.Errorf("seed %d %v: per-capture extraction found %d edges, oracle graph has %d", seed, mode, into, len(want))
		}

		// Essential extraction: exactly the edges with slack below margin
		// (modulo a small indifference band around the cut).
		var essSerial []timing.SeqEdge
		for _, id := range endpoints {
			capCell := tm.Endpoints()[id].Cell
			got := map[netlist.CellID]bool{}
			edges := tm.ExtractEssentialAt(id, mode, margin, nil)
			essSerial = append(essSerial, edges...)
			for _, e := range edges {
				got[e.Launch] = true
				od, ok := want[edgeKey{e.Launch, capCell}]
				if !ok || math.Abs(od-e.Delay) > 1e-6 {
					t.Errorf("seed %d %v: essential edge %d→%d delay %v, oracle %v (known=%v)",
						seed, mode, e.Launch, capCell, e.Delay, od, ok)
					continue
				}
				if s := g.SlackOf(e.Launch, capCell, od, late, nil); s >= margin+1e-3 {
					t.Errorf("seed %d %v: essential edge %d→%d has slack %v ≥ margin %v", seed, mode, e.Launch, capCell, s, margin)
				}
			}
			for k, od := range want {
				if k.c != capCell || got[k.l] {
					continue
				}
				if s := g.SlackOf(k.l, capCell, od, late, nil); s < margin-1e-3 {
					t.Errorf("seed %d %v: essential extraction missed %d→%d with slack %v < margin %v", seed, mode, k.l, capCell, s, margin)
				}
			}
		}
		for _, w := range []int{1, 3, 8} {
			batch := tm.ExtractEssentialBatch(endpoints, mode, margin, w, nil)
			if !equalEdges(batch, essSerial) {
				t.Errorf("seed %d %v: essential batch (workers=%d) differs from serial", seed, mode, w)
			}
		}
	}
}

func equalEdges(a, b []timing.SeqEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzExtract checks the timer's dynamic extraction primitives against the
// oracle's static full-graph extraction on fuzzed netlists.
func FuzzExtract(f *testing.F) {
	for seed := int64(0); seed < 10; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkExtraction(t, seed)
	})
}

// TestOracleAgreement is the differential acceptance sweep: many seeded
// netlists, every scheduler checked, and the iterative scheduler's worst
// setup slack compared against the LP optimum. ORACLE_FUZZ_N scales the seed
// count (the oracle-check make target uses 1000).
func TestOracleAgreement(t *testing.T) {
	n := 120
	if s := os.Getenv("ORACLE_FUZZ_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad ORACLE_FUZZ_N %q: %v", s, err)
		}
		n = v
	}
	if testing.Short() {
		n = 25
	}
	optimal, explained := 0, 0
	for seed := 0; seed < n; seed++ {
		out := checkSchedulers(t, int64(seed))
		switch {
		case out.optimal:
			optimal++
		case out.explained:
			explained++
		}
		if t.Failed() {
			t.Fatalf("stopping after findings at seed %d (of %d)", seed, n)
		}
	}
	t.Logf("oracle agreement over seeds 0..%d: %d optimal, %d gap-explained, 0 unexplained", n-1, optimal, explained)
}

// degenerateDesign builds the clock scaffolding for hand-made degenerate
// netlists.
func degenerateDesign(name string, period float64, ffs int) (*netlist.Design, []netlist.CellID) {
	lib := netlist.StdLib()
	d := netlist.NewDesign(name, period)
	d.Die = geom.RectOf(geom.Pt(0, 0), geom.Pt(1000, 1000))
	d.LCBMaxFanout = 50
	root := d.AddCell("clkroot", lib.Get("CLKROOT"), d.Die.Center())
	lcb := d.AddCell("lcb0", lib.Get("LCB"), geom.Pt(500, 400))
	cn := d.Connect("clk_root", d.OutPin(root), d.LCBIn(lcb))
	d.Nets[cn].IsClock = true
	cl := d.Connect("clk_l0", d.LCBOut(lcb))
	d.Nets[cl].IsClock = true
	var cells []netlist.CellID
	for i := 0; i < ffs; i++ {
		ff := d.AddCell("dff", lib.Get("DFF"), geom.Pt(400+40*float64(i), 500))
		d.AddSink(cl, d.FFClock(ff))
		cells = append(cells, ff)
	}
	return d, cells
}

// TestDegenerateInputsReturnTypedErrors locks in the no-panic contract:
// zero-flip-flop designs, non-positive periods and direct Q→D self-loops
// must surface as *core.DegenerateInputError from both iterative schedulers.
func TestDegenerateInputsReturnTypedErrors(t *testing.T) {
	lib := netlist.StdLib()
	cases := []struct {
		name   string
		design func() *netlist.Design
	}{
		{"zero-ffs", func() *netlist.Design {
			d, _ := degenerateDesign("noffs", 500, 0)
			in := d.AddCell("in0", lib.Get("PORTIN"), geom.Pt(0, 0))
			out := d.AddCell("out0", lib.Get("PORTOUT"), geom.Pt(1000, 0))
			d.Connect("n", d.OutPin(in), d.Cells[out].Pins[0])
			return d
		}},
		{"zero-period", func() *netlist.Design {
			d, ffs := degenerateDesign("p0", 0, 2)
			inv := d.AddCell("g", lib.Get("INV"), geom.Pt(450, 520))
			d.Connect("n1", d.FFQ(ffs[0]), d.Cells[inv].Pins[0])
			d.Connect("n2", d.OutPin(inv), d.FFData(ffs[1]))
			return d
		}},
		{"negative-period", func() *netlist.Design {
			d, ffs := degenerateDesign("pneg", -10, 1)
			_ = ffs
			return d
		}},
		{"direct-self-loop", func() *netlist.Design {
			d, ffs := degenerateDesign("selfloop", 500, 1)
			d.Connect("loop", d.FFQ(ffs[0]), d.FFData(ffs[0]))
			return d
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.design()
			if err := d.Validate(); err != nil {
				t.Fatalf("degenerate design must still be structurally valid: %v", err)
			}
			tm := newTimer(t, d)
			if _, err := core.Schedule(tm, core.Options{}); !isDegenerate(err) {
				t.Errorf("core.Schedule: want *core.DegenerateInputError, got %v", err)
			}
			if _, err := iccss.Schedule(tm, iccss.Options{}); !isDegenerate(err) {
				t.Errorf("iccss.Schedule: want *core.DegenerateInputError, got %v", err)
			}
			for _, ff := range d.FFs {
				if l := tm.ExtraLatency(ff); l != 0 {
					t.Errorf("rejected input left latency %v on flip-flop %d", l, ff)
				}
			}
		})
	}
}

func isDegenerate(err error) bool {
	var derr *core.DegenerateInputError
	return errors.As(err, &derr)
}

// TestGenerateAllTopologies pins the generator itself: every topology at a
// few sizes must produce a valid, timeable design with flip-flops.
func TestGenerateAllTopologies(t *testing.T) {
	for topo := Topology(0); topo < numTopologies; topo++ {
		for _, ffs := range []int{1, 7, 33} {
			d, err := Generate(Config{Topology: topo, FFs: ffs, Ports: 1, Seed: int64(ffs)})
			if err != nil {
				t.Fatalf("%v/%d: %v", topo, ffs, err)
			}
			if len(d.FFs) == 0 {
				t.Fatalf("%v/%d: no flip-flops", topo, ffs)
			}
			if d.Period <= 0 {
				t.Fatalf("%v/%d: period %v", topo, ffs, d.Period)
			}
			newTimer(t, d)
		}
	}
}
