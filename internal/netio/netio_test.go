package netio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"iterskew/internal/bench"
	"iterskew/internal/delay"
	"iterskew/internal/timing"
)

func TestRoundTripGenerated(t *testing.T) {
	p, err := bench.Superblue("superblue18", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	d, err := bench.Generate(p)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if d.Stats() != d2.Stats() {
		t.Errorf("stats differ: %v vs %v", d.Stats(), d2.Stats())
	}
	if d.Period != d2.Period || d.PortLatency != d2.PortLatency {
		t.Errorf("timing env differs: %v/%v vs %v/%v", d.Period, d.PortLatency, d2.Period, d2.PortLatency)
	}
	if d.MaxDisp != d2.MaxDisp || d.LCBMaxFanout != d2.LCBMaxFanout {
		t.Error("constraints differ")
	}
	if math.Abs(d.HPWL()-d2.HPWL()) > 1e-6 {
		t.Errorf("HPWL differs: %v vs %v", d.HPWL(), d2.HPWL())
	}

	// Identical timing state after round-trip.
	tm1, err := timing.New(d, delay.Default())
	if err != nil {
		t.Fatal(err)
	}
	tm2, err := timing.New(d2, delay.Default())
	if err != nil {
		t.Fatal(err)
	}
	w1, t1 := tm1.WNSTNS(timing.Late)
	w2, t2 := tm2.WNSTNS(timing.Late)
	if math.Abs(w1-w2) > 1e-6 || math.Abs(t1-t2) > 1e-6 {
		t.Errorf("late timing differs: %v/%v vs %v/%v", w1, t1, w2, t2)
	}
	e1, te1 := tm1.WNSTNS(timing.Early)
	e2, te2 := tm2.WNSTNS(timing.Early)
	if math.Abs(e1-e2) > 1e-6 || math.Abs(te1-te2) > 1e-6 {
		t.Errorf("early timing differs: %v/%v vs %v/%v", e1, te1, e2, te2)
	}
}

func TestRoundTripPortDelays(t *testing.T) {
	p, _ := bench.Superblue("superblue18", 0.003)
	d, err := bench.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	d.SetInputDelay(d.InPorts[0], 33.5)
	d.SetOutputDelay(d.OutPorts[0], 12.25)

	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.InDelay[d.InPorts[0]] != 33.5 {
		t.Errorf("indelay lost: %v", d2.InDelay)
	}
	if d2.OutDelay[d.OutPorts[0]] != 12.25 {
		t.Errorf("outdelay lost: %v", d2.OutDelay)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "not-a-netlist v1\nend\n",
		"bad type":     "iterskew-netlist v1\ncells 1\nNOPE g 0 0\nend\n",
		"bad pin ref":  "iterskew-netlist v1\ncells 1\nINV g 0 0\nnets 1\nn 0 1 0-0\nend\n",
		"pin range":    "iterskew-netlist v1\ncells 1\nINV g 0 0\nnets 1\nn 0 1 0:7\nend\n",
		"cell range":   "iterskew-netlist v1\ncells 1\nINV g 0 0\nnets 1\nn 0 1 5:0\nend\n",
		"no end":       "iterskew-netlist v1\ndesign x\n",
		"net count":    "iterskew-netlist v1\ncells 1\nINV g 0 0\nnets 1\nn 0 3 0:1\nend\n",
		"unknown word": "iterskew-netlist v1\nbogus 4\nend\n",
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: error not detected", name)
		}
	}
}

func TestReadCommentsAndBlankLines(t *testing.T) {
	text := `iterskew-netlist v1
# a comment
design tiny

period 1000
cells 2
INV g1 0 0
INV g2 10 0
nets 1
n 0 2 0:1 1:0
end
`
	d, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 2 || len(d.Nets) != 1 {
		t.Errorf("parsed %d cells, %d nets", len(d.Cells), len(d.Nets))
	}
	if d.Period != 1000 {
		t.Errorf("period = %v", d.Period)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a b\tc"); got != "a_b_c" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize(""); got != "_" {
		t.Errorf("sanitize empty = %q", got)
	}
}

// TestReadErrorLineNumbers asserts every parse failure pinpoints the 1-based
// line it occurred on — including truncation and scanner-level errors, which
// historically surfaced without a position.
func TestReadErrorLineNumbers(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"bad type", "iterskew-netlist v1\ncells 1\nNOPE g 0 0\nend\n", "line 3"},
		{"bad pin ref", "iterskew-netlist v1\ncells 1\nINV g 0 0\nnets 1\nn 0 1 0-0\nend\n", "line 5"},
		{"unknown word", "iterskew-netlist v1\ndesign x\nbogus 4\nend\n", "line 3"},
		{"truncated cells", "iterskew-netlist v1\ncells 2\nINV g 0 0\n", "line 3"},
		{"truncated nets", "iterskew-netlist v1\ncells 1\nINV g 0 0\nnets 1\n", "line 4"},
		{"missing end", "iterskew-netlist v1\ndesign x\nperiod 10\n", "line 3"},
		{"comments counted", "iterskew-netlist v1\n# one\n# two\nbogus\nend\n", "line 4"},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.text))
		if err == nil {
			t.Errorf("%s: error not detected", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not carry %q", tc.name, err, tc.want)
		}
	}
}

// TestReadErrorUnwraps asserts positioned errors keep their underlying cause
// reachable through errors.Is.
func TestReadErrorUnwraps(t *testing.T) {
	_, err := Read(strings.NewReader("iterskew-netlist v1\ncells 2\nINV g 0 0\n"))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation error %q does not unwrap to io.ErrUnexpectedEOF", err)
	}
}
