package netio

import (
	"bytes"
	"strings"
	"testing"

	"iterskew/internal/bench"
)

// FuzzRead: the parser must never panic and must either error or produce a
// design that validates.
func FuzzRead(f *testing.F) {
	f.Add("")
	f.Add("iterskew-netlist v1\nend\n")
	f.Add("iterskew-netlist v1\ncells 1\nINV g 0 0\nnets 1\nn 0 1 0:0\nend\n")
	f.Add("iterskew-netlist v1\ncells 2\nINV a 0 0\nINV b 1 1\nnets 1\nn 0 2 0:1 1:0\nend\n")
	f.Add("iterskew-netlist v1\ndie 0 0 10 10\nperiod 100\nindelay 0 5\nend\n")
	// A real serialized design as a rich seed.
	p, err := bench.Superblue("superblue18", 0.002)
	if err == nil {
		if d, err := bench.Generate(p); err == nil {
			var buf bytes.Buffer
			if Write(&buf, d) == nil {
				f.Add(buf.String())
			}
		}
	}

	f.Fuzz(func(t *testing.T, text string) {
		d, err := Read(strings.NewReader(text))
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid design: %v", err)
		}
		// Round-trip: what we accepted must re-serialize and re-parse.
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("Write failed on accepted design: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
	})
}
