// Package netio serializes designs to and from a line-oriented text format,
// standing in for the Bookshelf files of the ICCAD-2015 contest. The format
// is self-contained except for the cell library: cell types are referenced
// by name and resolved against netlist.StdLib on read.
//
// Format (one declaration per line, '#' starts a comment):
//
//	iterskew-netlist v1
//	design <name>
//	period <ps>
//	portlatency <ps>
//	die <lox> <loy> <hix> <hiy>
//	maxdisp <dbu>
//	lcbmaxfanout <n>
//	cells <count>
//	<type> <name> <x> <y>            # repeated <count> times, index = order
//	nets <count>
//	<name> <clock 0|1> <npins> <cell>:<pin> ...   # first pin is the driver
//	end
package netio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"iterskew/internal/geom"
	"iterskew/internal/netlist"
)

// Write serializes d to w. It builds the whole text in one buffer with
// strconv appends rather than fmt — Write sits on the content-hashing hot
// path (graphio.HashOf serializes the netlist per hash), so the reflective
// fmt machinery is measurable overhead at superblue scale.
func Write(w io.Writer, d *netlist.Design) error {
	b := make([]byte, 0, 64+32*len(d.Cells)+48*len(d.Nets))
	g := func(v float64) { b = strconv.AppendFloat(b, v, 'g', -1, 64) }
	i := func(v int) { b = strconv.AppendInt(b, int64(v), 10) }

	b = append(b, "iterskew-netlist v1\ndesign "...)
	b = append(b, sanitize(d.Name)...)
	b = append(b, "\nperiod "...)
	g(d.Period)
	b = append(b, "\nportlatency "...)
	g(d.PortLatency)
	b = append(b, '\n')
	if !d.Die.Empty() {
		b = append(b, "die "...)
		g(d.Die.Lo.X)
		b = append(b, ' ')
		g(d.Die.Lo.Y)
		b = append(b, ' ')
		g(d.Die.Hi.X)
		b = append(b, ' ')
		g(d.Die.Hi.Y)
		b = append(b, '\n')
	}
	b = append(b, "maxdisp "...)
	g(d.MaxDisp)
	b = append(b, "\nlcbmaxfanout "...)
	i(d.LCBMaxFanout)
	b = append(b, "\ncells "...)
	i(len(d.Cells))
	b = append(b, '\n')
	for ci := range d.Cells {
		c := &d.Cells[ci]
		b = append(b, c.Type.Name...)
		b = append(b, ' ')
		b = append(b, sanitize(c.Name)...)
		b = append(b, ' ')
		g(c.Pos.X)
		b = append(b, ' ')
		g(c.Pos.Y)
		b = append(b, '\n')
	}

	for _, kv := range sortedDelays(d.InDelay) {
		b = append(b, "indelay "...)
		i(int(kv.c))
		b = append(b, ' ')
		g(kv.v)
		b = append(b, '\n')
	}
	for _, kv := range sortedDelays(d.OutDelay) {
		b = append(b, "outdelay "...)
		i(int(kv.c))
		b = append(b, ' ')
		g(kv.v)
		b = append(b, '\n')
	}

	// Pin index within its owning cell, precomputed so each net pin is O(1)
	// instead of a scan over the cell's pin list.
	pinIdx := make([]int32, len(d.Pins))
	for ci := range d.Cells {
		for k, p := range d.Cells[ci].Pins {
			pinIdx[p] = int32(k)
		}
	}

	b = append(b, "nets "...)
	i(len(d.Nets))
	b = append(b, '\n')
	for ni := range d.Nets {
		n := &d.Nets[ni]
		b = append(b, sanitize(n.Name)...)
		if n.IsClock {
			b = append(b, " 1 "...)
		} else {
			b = append(b, " 0 "...)
		}
		i(1 + len(n.Sinks))
		writePin := func(p netlist.PinID) {
			b = append(b, ' ')
			i(int(d.Pins[p].Cell))
			b = append(b, ':')
			i(int(pinIdx[p]))
		}
		writePin(n.Driver)
		for _, s := range n.Sinks {
			writePin(s)
		}
		b = append(b, '\n')
	}
	b = append(b, "end\n"...)
	_, err := w.Write(b)
	return err
}

type delayKV struct {
	c netlist.CellID
	v float64
}

// sortedDelays returns a deterministic listing of a port-delay map.
func sortedDelays(m map[netlist.CellID]float64) []delayKV {
	out := make([]delayKV, 0, len(m))
	for c, v := range m {
		out = append(out, delayKV{c, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].c < out[j].c })
	return out
}

// sanitize replaces whitespace in names so the line format stays parseable.
func sanitize(s string) string {
	if s == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}

// Read parses a design previously produced by Write, resolving cell types
// against netlist.StdLib.
func Read(r io.Reader) (*netlist.Design, error) {
	lib := netlist.StdLib()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	line := 0
	next := func() ([]string, error) {
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			return strings.Fields(text), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	errf := func(format string, args ...any) error {
		return fmt.Errorf("netio: line %d: %s", line, fmt.Sprintf(format, args...))
	}
	// errw positions an underlying error (scanner failure, unexpected EOF)
	// at the last line read while keeping it unwrappable for errors.Is.
	errw := func(err error) error {
		return fmt.Errorf("netio: line %d: %w", line, err)
	}

	f, err := next()
	if err != nil {
		return nil, errw(err)
	}
	if len(f) < 2 || f[0] != "iterskew-netlist" || f[1] != "v1" {
		return nil, errf("bad header %v", f)
	}

	d := netlist.NewDesign("", 0)
	var cellCount int
	for {
		f, err = next()
		if err != nil {
			return nil, errw(err)
		}
		switch f[0] {
		case "design":
			if len(f) != 2 {
				return nil, errf("design wants 1 arg")
			}
			d.Name = f[1]
		case "period":
			if d.Period, err = parse1(f); err != nil {
				return nil, errf("%v", err)
			}
		case "portlatency":
			if d.PortLatency, err = parse1(f); err != nil {
				return nil, errf("%v", err)
			}
		case "maxdisp":
			if d.MaxDisp, err = parse1(f); err != nil {
				return nil, errf("%v", err)
			}
		case "indelay", "outdelay":
			if len(f) != 3 {
				return nil, errf("%s wants 2 args", f[0])
			}
			ci, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.ParseFloat(f[2], 64)
			if err1 != nil || err2 != nil || ci < 0 || ci >= len(d.Cells) {
				return nil, errf("bad %s %v", f[0], f)
			}
			if f[0] == "indelay" {
				d.SetInputDelay(netlist.CellID(ci), v)
			} else {
				d.SetOutputDelay(netlist.CellID(ci), v)
			}
		case "lcbmaxfanout":
			v, err := parse1(f)
			if err != nil {
				return nil, errf("%v", err)
			}
			d.LCBMaxFanout = int(v)
		case "die":
			if len(f) != 5 {
				return nil, errf("die wants 4 args")
			}
			var vals [4]float64
			for i := 0; i < 4; i++ {
				if vals[i], err = strconv.ParseFloat(f[i+1], 64); err != nil {
					return nil, errf("die: %v", err)
				}
			}
			d.Die = geom.RectOf(geom.Pt(vals[0], vals[1]), geom.Pt(vals[2], vals[3]))
		case "cells":
			v, err := parse1(f)
			if err != nil {
				return nil, errf("%v", err)
			}
			cellCount = int(v)
			for i := 0; i < cellCount; i++ {
				cf, err := next()
				if err != nil {
					return nil, errw(err)
				}
				if len(cf) != 4 {
					return nil, errf("cell wants 4 fields, got %v", cf)
				}
				ct := lib.Get(cf[0])
				if ct == nil {
					return nil, errf("unknown cell type %q", cf[0])
				}
				x, err1 := strconv.ParseFloat(cf[2], 64)
				y, err2 := strconv.ParseFloat(cf[3], 64)
				if err1 != nil || err2 != nil {
					return nil, errf("bad cell position %v", cf)
				}
				d.AddCell(cf[1], ct, geom.Pt(x, y))
			}
		case "nets":
			v, err := parse1(f)
			if err != nil {
				return nil, errf("%v", err)
			}
			for i := 0; i < int(v); i++ {
				nf, err := next()
				if err != nil {
					return nil, errw(err)
				}
				if len(nf) < 4 {
					return nil, errf("net wants >=4 fields, got %v", nf)
				}
				clock := nf[1] == "1"
				np, err := strconv.Atoi(nf[2])
				if err != nil || np < 1 || len(nf) != 3+np {
					return nil, errf("bad net pin count %v", nf)
				}
				pins := make([]netlist.PinID, np)
				for k := 0; k < np; k++ {
					pins[k], err = parsePinRef(d, nf[3+k])
					if err != nil {
						return nil, errf("%v", err)
					}
				}
				nid := d.Connect(nf[0], pins[0], pins[1:]...)
				d.Nets[nid].IsClock = clock
			}
		case "end":
			if err := d.Validate(); err != nil {
				return nil, fmt.Errorf("netio: line %d: %w", line, err)
			}
			return d, nil
		default:
			return nil, errf("unknown directive %q", f[0])
		}
	}
}

func parse1(f []string) (float64, error) {
	if len(f) != 2 {
		return 0, fmt.Errorf("%s wants 1 arg", f[0])
	}
	return strconv.ParseFloat(f[1], 64)
}

func parsePinRef(d *netlist.Design, s string) (netlist.PinID, error) {
	ci, pi, ok := strings.Cut(s, ":")
	if !ok {
		return netlist.NoPin, fmt.Errorf("bad pin ref %q", s)
	}
	c, err1 := strconv.Atoi(ci)
	p, err2 := strconv.Atoi(pi)
	if err1 != nil || err2 != nil {
		return netlist.NoPin, fmt.Errorf("bad pin ref %q", s)
	}
	if c < 0 || c >= len(d.Cells) {
		return netlist.NoPin, fmt.Errorf("pin ref %q: cell out of range", s)
	}
	if p < 0 || p >= len(d.Cells[c].Pins) {
		return netlist.NoPin, fmt.Errorf("pin ref %q: pin out of range", s)
	}
	return d.Cells[c].Pins[p], nil
}
