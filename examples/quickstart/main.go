// Quickstart: generate a scaled superblue benchmark, run the paper's full
// flow (iterative CSS + physical realization), and print the before/after
// timing — the 30-second tour of the library.
package main

import (
	"fmt"
	"log"

	"iterskew"
)

func main() {
	// 1. A scaled ICCAD-2015-style benchmark (1% of superblue18's FFs).
	profile, err := iterskew.SuperblueProfile("superblue18", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	design, err := iterskew.GenerateBenchmark(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %v (period %.0f ps)\n\n", design.Name, design.Stats(), design.Period)

	// 2. Run the paper's algorithm end to end: early-stage CSS + LCB
	//    reconnection + cell movement, then the late stage.
	report, err := iterskew.RunFlow(design, iterskew.FlowConfig{Method: iterskew.Ours})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Results.
	fmt.Println("input :", report.Input)
	fmt.Println("final :", report.Final)
	fmt.Printf("\nCSS %v (k=%d rounds, %d sequential edges extracted), OPT %v\n",
		report.CSSTime, report.Rounds, report.ExtractedEdges, report.OptTime)
	fmt.Printf("HPWL increase: %.4f%%\n", report.HPWLIncrPct)
	if len(report.ConstraintErrs) == 0 {
		fmt.Println("contest constraints: all satisfied")
	} else {
		fmt.Println("constraint violations:", report.ConstraintErrs)
	}
}
