// Min_period demonstrates the classical clock skew scheduling question the
// paper's machinery answers in milliseconds: how fast can this design be
// clocked with unrestricted useful skew?
//
// On a register ring the answer has a closed form — the maximum mean cycle
// delay (Albrecht et al. [8]) — so the example builds rings, computes the
// MMWC bound from the extracted sequential graph, and shows the iterative
// engine's binary-searched minimum period landing on it.
package main

import (
	"fmt"
	"log"

	"iterskew"
	"iterskew/internal/bench"
	"iterskew/internal/netlist"
	"iterskew/internal/seqgraph"
	"iterskew/internal/timing"
)

func main() {
	fmt.Printf("%-14s | %10s | %12s | %12s | %7s\n",
		"design", "T0 (ps)", "zero-skew T", "min T (CSS)", "probes")

	for _, cfg := range []struct {
		stages, width int
		slow          []int
	}{
		{4, 1, nil},
		{6, 2, []int{0}},
		{8, 3, []int{2}},
	} {
		d, err := bench.RingPipeline(cfg.stages, cfg.width, bench.StructOptions{
			SlowStages: cfg.slow, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		tm, err := iterskew.NewTimer(d)
		if err != nil {
			log.Fatal(err)
		}

		// Zero-skew bound: the worst per-endpoint critical period.
		zeroSkew := 0.0
		for _, ff := range d.FFs {
			e := tm.EndpointOf(ff)
			if tc := d.Period - tm.LateSlack(e); tc > zeroSkew {
				zeroSkew = tc
			}
		}

		res, err := iterskew.MinPeriod(d, 0, 2*zeroSkew, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ring %2dx%-2d %s | %10.1f | %12.1f | %12.1f | %7d\n",
			cfg.stages, cfg.width, slowTag(cfg.slow), d.Period, zeroSkew, res.Period, res.Probes)

		// Cross-check on the cycle bound: extract the full sequential graph
		// and compute the maximum mean cycle DELAY, the theoretical floor.
		g := seqgraph.New()
		isPort := func(c netlist.CellID) bool {
			k := d.Cells[c].Type.Kind
			return k == netlist.KindPortIn || k == netlist.KindPortOut
		}
		var buf []timing.SeqEdge
		for _, ff := range d.FFs {
			buf = tm.ExtractAllFrom(ff, timing.Late, buf[:0])
			for _, e := range buf {
				g.AddSeqEdge(e, isPort)
			}
		}
		// Cycle mean of DELAY+setup = minimum period on that cycle.
		w := make([]float64, len(g.Edges))
		for i := range g.Edges {
			w[i] = g.Edges[i].Seq.Delay + 45 // + DFF setup
		}
		if mean, _, ok := g.MaxMeanCycle(w, nil); ok {
			fmt.Printf("%14s | MMWC bound: %.1f ps (min T lands within %.1f ps)\n",
				"", mean, res.Period-mean)
		}
	}
}

func slowTag(s []int) string {
	if len(s) == 0 {
		return "bal "
	}
	return "slow"
}
