// Latency_constraints demonstrates clock skew scheduling under per-flip-flop
// latency bounds (Eq 5 of the paper) — the capability the paper highlights
// over prior CSS work. The same violating pipeline is scheduled three times:
// unbounded, with a moderate bound, and with a tight bound; the achievable
// slack degrades gracefully as the bound tightens, and the schedule never
// exceeds it.
package main

import (
	"fmt"
	"log"

	"iterskew"
)

func main() {
	profile, err := iterskew.SuperblueProfile("superblue5", 0.005)
	if err != nil {
		log.Fatal(err)
	}
	base, err := iterskew.GenerateBenchmark(profile)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design %s: %v (period %.0f ps)\n\n", base.Name, base.Stats(), base.Period)
	fmt.Printf("%-12s | %12s %14s | %10s %10s\n", "bound (ps)", "L-WNS(ps)", "L-TNS(ps)", "targets", "max l*")

	for _, bound := range []float64{0, 200, 50, 10} {
		d := base.Clone()
		tm, err := iterskew.NewTimer(d)
		if err != nil {
			log.Fatal(err)
		}

		opts := iterskew.ScheduleOptions{Mode: iterskew.Late}
		label := "unbounded"
		if bound > 0 {
			b := bound
			opts.LatencyUB = func(iterskew.CellID) float64 { return b }
			label = fmt.Sprintf("%.0f", b)
		}
		res, err := iterskew.ScheduleSkew(tm, opts)
		if err != nil {
			log.Fatal(err)
		}

		maxL := 0.0
		for _, l := range res.Target {
			if l > maxL {
				maxL = l
			}
		}
		m := iterskew.Measure(tm)
		fmt.Printf("%-12s | %12.1f %14.1f | %10d %10.1f\n",
			label, m.WNSLate, m.TNSLate, len(res.Target), maxL)

		if bound > 0 && maxL > bound+1e-6 {
			log.Fatalf("schedule exceeded the bound: %v > %v", maxL, bound)
		}
	}
	fmt.Println("\nEvery schedule respects its bound; tighter bounds recover less slack.")
}
