// Compare_baselines runs all four methods of the paper's Table I on one
// benchmark from the same input solution and prints a compact comparison —
// the quality tie between IC-CSS+ and the iterative algorithm, FPM's
// residual early violations, and the extraction-volume contrast.
package main

import (
	"fmt"
	"log"

	"iterskew"
)

func main() {
	profile, err := iterskew.SuperblueProfile("superblue16", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	d, err := iterskew.GenerateBenchmark(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %v (period %.0f ps)\n\n", d.Name, d.Stats(), d.Period)
	fmt.Printf("%-11s | %9s %11s | %10s %12s | %9s %9s | %8s\n",
		"method", "E-WNS", "E-TNS", "L-WNS", "L-TNS", "CSS", "OPT", "#edges")

	for _, m := range []iterskew.Method{
		iterskew.Baseline, iterskew.FPM, iterskew.OursEarly, iterskew.ICCSSPlus, iterskew.Ours,
	} {
		rep, err := iterskew.RunFlow(d, iterskew.FlowConfig{Method: m})
		if err != nil {
			log.Fatal(err)
		}
		f := rep.Final
		fmt.Printf("%-11s | %9.1f %11.1f | %10.1f %12.1f | %9s %9s | %8d\n",
			m, f.WNSEarly, f.TNSEarly, f.WNSLate, f.TNSLate,
			rep.CSSTime.Round(10e3), rep.OptTime.Round(10e3), rep.ExtractedEdges)
	}

	fmt.Println("\nExpected shape (Table I): FPM leaves residual early WNS; Ours-Early")
	fmt.Println("and the full flows clear it; IC-CSS+ matches Ours on slack but")
	fmt.Println("extracts ~10x the sequential edges and spends far longer in CSS.")
}
