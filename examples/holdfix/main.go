// Holdfix builds a small design BY HAND through the public API — two
// flip-flops on differently loaded clock branches with a short data path, a
// classic skew-induced hold violation — and fixes it two ways:
//
//  1. predictively, with the paper's iterative CSS raising the launch
//     latency (bounded by the launch's late-slack headroom, Eq 11);
//  2. physically, with LCB–FF reconnection realizing the scheduled latency.
//
// It demonstrates the library's low-level API: building netlists, running
// the timer, scheduling, and realizing skews.
package main

import (
	"fmt"
	"log"

	"iterskew"
)

func main() {
	lib := iterskew.StdLib()
	d := iterskew.NewDesign("holdfix", 2000)
	d.Die = iterskew.RectOf(iterskew.Pt(0, 0), iterskew.Pt(8000, 8000))
	d.MaxDisp = 400

	// Clock: one root, a near LCB (l1) and a far LCB (l2).
	root := d.AddCell("root", lib.Get("CLKROOT"), iterskew.Pt(4000, 4000))
	l1 := d.AddCell("l1", lib.Get("LCB"), iterskew.Pt(4000, 4000))
	l2 := d.AddCell("l2", lib.Get("LCB"), iterskew.Pt(4000, 7000))

	// Data: ffA --INV--> ffB, both placed near l1, but ffB clocked by the
	// FAR l2 — its capture clock arrives late, so the short path races it.
	ffA := d.AddCell("ffA", lib.Get("DFF"), iterskew.Pt(4000, 4100))
	ffB := d.AddCell("ffB", lib.Get("DFF"), iterskew.Pt(4100, 4100))
	g := d.AddCell("g", lib.Get("INV"), iterskew.Pt(4050, 4100))
	d.Connect("n1", d.FFQ(ffA), d.Cells[g].Pins[0])
	d.Connect("n2", d.OutPin(g), d.FFData(ffB))

	cr := d.Connect("cr", d.OutPin(root), d.LCBIn(l1), d.LCBIn(l2))
	d.Nets[cr].IsClock = true
	c1 := d.Connect("c1", d.LCBOut(l1), d.FFClock(ffA))
	d.Nets[c1].IsClock = true
	c2 := d.Connect("c2", d.LCBOut(l2), d.FFClock(ffB))
	d.Nets[c2].IsClock = true

	if errs := iterskew.CheckConstraints(d); len(errs) != 0 {
		log.Fatal(errs)
	}

	tm, err := iterskew.NewTimer(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input              :", iterskew.Measure(tm))
	fmt.Printf("clock latencies    : ffA=%.1f ps, ffB=%.1f ps (skew %.1f ps)\n",
		tm.Latency(ffA), tm.Latency(ffB), tm.Latency(ffB)-tm.Latency(ffA))

	// Step 1: the paper's iterative CSS, early mode.
	res, err := iterskew.ScheduleSkew(tm, iterskew.ScheduleOptions{Mode: iterskew.Early})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter CSS (predictive):", iterskew.Measure(tm))
	for ff, l := range res.Target {
		fmt.Printf("  target latency for %s: +%.1f ps\n", d.Cells[ff].Name, l)
	}

	// Step 2: realize the target physically (reconnect ffA to a longer
	// clock branch, clearing all predictive latencies).
	iterskew.Optimize(tm, res.Target, iterskew.OptimizeOptions{})
	fmt.Println("\nafter physical OPT :", iterskew.Measure(tm))
	fmt.Printf("ffA now clocked by : %s (latency %.1f ps)\n",
		d.Cells[d.LCBofFF(ffA)].Name, tm.Latency(ffA))
}
