// Cts_guide demonstrates the paper's future-work direction: using the fast
// iterative CSS schedule to guide clock tree synthesis. It compares three
// ways of consuming the same schedule on one benchmark:
//
//  1. nothing (drop the schedule),
//  2. the §IV incremental ECO (LCB–FF reconnection + cell movement),
//  3. full schedule-guided re-clustering of the clock tree (GuideClockTree).
//
// It also shows the timing-report API: worst-path breakdowns and a slack
// histogram before and after.
package main

import (
	"fmt"
	"log"

	"iterskew"
)

func main() {
	profile, err := iterskew.SuperblueProfile("superblue5", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	input, err := iterskew.GenerateBenchmark(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %v (period %.0f ps)\n\n", input.Name, input.Stats(), input.Period)

	type outcome struct {
		name     string
		tnsLate  float64
		wnsLate  float64
		hpwlIncr float64
	}
	var results []outcome

	run := func(name string, realize func(tm *iterskew.Timer, targets map[iterskew.CellID]float64)) {
		d := input.Clone()
		tm, err := iterskew.NewTimer(d)
		if err != nil {
			log.Fatal(err)
		}
		res, err := iterskew.ScheduleSkew(tm, iterskew.ScheduleOptions{Mode: iterskew.Late})
		if err != nil {
			log.Fatal(err)
		}
		realize(tm, res.Target)
		m := iterskew.Measure(tm)
		results = append(results, outcome{name, m.TNSLate, m.WNSLate,
			(m.HPWL - input.HPWL()) / input.HPWL() * 100})
	}

	run("unrealized", func(tm *iterskew.Timer, targets map[iterskew.CellID]float64) {
		for ff := range targets {
			tm.SetExtraLatency(ff, 0)
		}
		tm.Update()
	})
	run("ECO (§IV)", func(tm *iterskew.Timer, targets map[iterskew.CellID]float64) {
		iterskew.Optimize(tm, targets, iterskew.OptimizeOptions{})
	})
	run("CTS-guided", func(tm *iterskew.Timer, targets map[iterskew.CellID]float64) {
		g := iterskew.GuideClockTree(tm, targets, iterskew.CTSOptions{})
		fmt.Printf("CTS guidance: %d flip-flops re-clustered, schedule error %.0f -> %.0f ps\n\n",
			g.Moved, g.ErrAbsIn, g.ErrAbs)
	})

	fmt.Printf("%-12s | %10s %12s | %8s\n", "realization", "L-WNS(ps)", "L-TNS(ps)", "HPWL%")
	for _, r := range results {
		fmt.Printf("%-12s | %10.1f %12.1f | %8.3f\n", r.name, r.wnsLate, r.tnsLate, r.hpwlIncr)
	}

	// Timing-report tour on the final (CTS-guided) design.
	d := input.Clone()
	tm, _ := iterskew.NewTimer(d)
	res, err := iterskew.ScheduleSkew(tm, iterskew.ScheduleOptions{Mode: iterskew.Late})
	if err != nil {
		log.Fatal(err)
	}
	iterskew.GuideClockTree(tm, res.Target, iterskew.CTSOptions{})

	fmt.Println("\nWorst remaining late path:")
	for _, r := range tm.WorstPaths(iterskew.Late, 1) {
		fmt.Print(r.Format())
	}
	fmt.Println("\nLate slack histogram (100 ps bins):")
	fmt.Print(tm.SlackHistogram(iterskew.Late, 100))
}
